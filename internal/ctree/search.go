package ctree

import (
	"repro/internal/index"
	"repro/internal/record"
)

// Search in a CTree fans out over contiguous leaf ranges: the leaf file is
// one sorted sequence, so exact and range searches split it into one chunk
// per worker (Options.Parallelism) and scan the chunks concurrently, each
// worker with its own page buffer and deterministic collector. Merged
// per-worker results are identical to the serial scan's (see
// index.Collector). Searches allocate their own page buffers, so any number
// of searches may run concurrently against one tree; only inserts require
// external serialization against searches.

// ApproxSearch answers an approximate k-NN query by descending to the leaf
// that covers the query's sortable key and scanning it (plus neighboring
// leaves until k candidates are seen). This is the cheap, no-guarantee
// search of the demo: one or two page reads, inherently navigational, so it
// stays serial at every parallelism setting.
func (t *Tree) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	buf := make([]byte, t.opts.Disk.PageSize())
	center := t.findLeaf(q.Key)
	// Scan the covering leaf, then alternate outward until k candidates
	// have been evaluated (fill-factor slack or windows can leave leaves
	// short).
	seen, err := t.scanLeafInto(center, q, col, buf)
	if err != nil {
		return nil, err
	}
	lo, hi := center, center
	for seen < k && (lo > 0 || hi < len(t.leaves)-1) {
		if lo > 0 {
			lo--
			n, err := t.scanLeafInto(lo, q, col, buf)
			if err != nil {
				return nil, err
			}
			seen += n
		}
		if seen < k && hi < len(t.leaves)-1 {
			hi++
			n, err := t.scanLeafInto(hi, q, col, buf)
			if err != nil {
				return nil, err
			}
			seen += n
		}
	}
	return col.Results(), nil
}

func (t *Tree) scanLeafInto(li int, q index.Query, col *index.Collector, buf []byte) (int, error) {
	entries, err := t.readLeafBuf(li, buf)
	if err != nil {
		return 0, err
	}
	inWin := entries[:0:0]
	for _, e := range entries {
		if q.InWindow(e.TS) {
			inWin = append(inWin, e)
		}
	}
	n, err := index.EvalCandidates(q, inWin, t.opts.Config, t.opts.Raw, col)
	return n, err
}

// leafChunks splits the leaf directory into one contiguous range per
// available worker, so each worker keeps the sequential access pattern the
// compact layout buys within its own range.
func (t *Tree) leafChunks() [][2]int {
	n := len(t.leaves)
	w := t.pool.WorkersFor(n)
	chunks := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			chunks = append(chunks, [2]int{lo, hi})
		}
	}
	return chunks
}

// ExactSearch returns the true k nearest neighbors. It first runs
// ApproxSearch to seed the best-so-far bound, then scans the entire leaf
// file, pruning every entry whose iSAX lower bound passes the bound; only
// survivors pay for a true distance (an inline payload read, or a random
// raw-file fetch when non-materialized). The scan splits into one
// contiguous leaf range per worker — the sequential access pattern of
// Coconut's sortable layout, striped across the pool.
func (t *Tree) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	approx, err := t.ApproxSearch(q, k)
	if err != nil {
		return nil, err
	}
	for _, r := range approx {
		col.Add(r)
	}
	chunks := t.leafChunks()
	err = index.FanOut(t.pool, len(chunks), col, (*index.Collector).Clone, (*index.Collector).Merge,
		t.opts.Disk.PageSize(), func(i int, col *index.Collector, buf []byte) error {
			return t.exactScanRange(chunks[i][0], chunks[i][1], q, col, buf)
		})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// exactScanRange scans leaves [lo, hi) with lower-bound pruning into col.
func (t *Tree) exactScanRange(lo, hi int, q index.Query, col *index.Collector, buf []byte) error {
	recSize := t.codec.Size()
	var cands []record.Entry
	for li := lo; li < hi; li++ {
		if _, err := t.opts.Disk.ReadPage(t.leafFile, t.pageNum(li), buf); err != nil {
			return err
		}
		cands = cands[:0]
		for i := 0; i < t.leaves[li].count; i++ {
			rec := buf[i*recSize : (i+1)*recSize]
			// Cheap reject on the raw key before decoding the entry.
			if col.Skip(t.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec))) {
				continue
			}
			e, err := t.codec.Decode(rec)
			if err != nil {
				return err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if _, err := index.EvalCandidates(q, cands, t.opts.Config, t.opts.Raw, col); err != nil {
			return err
		}
	}
	return nil
}

// RangeSearch returns every indexed series within Euclidean distance eps
// of the query: one pruned scan of the leaf file, striped across the pool
// in contiguous leaf ranges.
func (t *Tree) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col := index.NewRangeCollector(eps)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	chunks := t.leafChunks()
	err := index.FanOut(t.pool, len(chunks), col, (*index.RangeCollector).Clone, (*index.RangeCollector).Merge,
		t.opts.Disk.PageSize(), func(i int, col *index.RangeCollector, buf []byte) error {
			return t.rangeScanRange(chunks[i][0], chunks[i][1], q, col, buf)
		})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// rangeScanRange scans leaves [lo, hi) with epsilon pruning into col.
func (t *Tree) rangeScanRange(lo, hi int, q index.Query, col *index.RangeCollector, buf []byte) error {
	recSize := t.codec.Size()
	var cands []record.Entry
	for li := lo; li < hi; li++ {
		if _, err := t.opts.Disk.ReadPage(t.leafFile, t.pageNum(li), buf); err != nil {
			return err
		}
		cands = cands[:0]
		for i := 0; i < t.leaves[li].count; i++ {
			rec := buf[i*recSize : (i+1)*recSize]
			if t.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec)) > col.Bound() {
				continue
			}
			e, err := t.codec.Decode(rec)
			if err != nil {
				return err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if err := index.EvalRangeCandidates(q, cands, t.opts.Config, t.opts.Raw, col); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ index.Index         = (*Tree)(nil)
	_ index.Inserter      = (*Tree)(nil)
	_ index.RangeSearcher = (*Tree)(nil)
)
