package ctree

import (
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Search in a CTree fans out over contiguous leaf ranges: the leaf file is
// one sorted sequence, so exact and range searches split it into one chunk
// per worker (Options.Parallelism) and scan the chunks concurrently, each
// worker with its own scratch state and deterministic collector. Merged
// per-worker results are identical to the serial scan's (see
// index.Collector). Every probe runs through the squared-space pruning
// pipeline (index.SearchCtx): per-query MINDIST tables, no per-candidate
// allocation, early-abandoning squared verification straight from the page
// bytes. Searches draw their contexts from a shared pool, so any number of
// searches may run concurrently against one tree; only inserts require
// external serialization against searches.

// ApproxSearch answers an approximate k-NN query by descending to the leaf
// that covers the query's sortable key and scanning it (plus neighboring
// leaves until k candidates are seen). This is the cheap, no-guarantee
// search of the demo: one or two page reads, inherently navigational, so it
// stays serial at every parallelism setting.
func (t *Tree) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := t.opts.Planner.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	col := index.NewCollector(k)
	sp := ctx.Trace.Start("approx")
	if err := t.approxInto(q, k, col, ctx); err != nil {
		return nil, err
	}
	sp.End()
	return col.Results(), nil
}

// approxInto runs the approximate phase into col with an already-acquired
// context, so ExactSearch shares one context (and one table fill) across
// both phases.
func (t *Tree) approxInto(q index.Query, k int, col *index.Collector, ctx *index.SearchCtx) error {
	if len(t.leaves) == 0 {
		return nil
	}
	sc := ctx.Scratch0()
	center := t.findLeaf(q.Key)
	// Scan the covering leaf, then alternate outward until k candidates
	// have been evaluated (fill-factor slack or windows can leave leaves
	// short).
	seen, err := t.scanLeafInto(center, q, col, sc)
	if err != nil {
		return err
	}
	lo, hi := center, center
	for seen < k && (lo > 0 || hi < len(t.leaves)-1) {
		if lo > 0 {
			lo--
			n, err := t.scanLeafInto(lo, q, col, sc)
			if err != nil {
				return err
			}
			seen += n
		}
		if seen < k && hi < len(t.leaves)-1 {
			hi++
			n, err := t.scanLeafInto(hi, q, col, sc)
			if err != nil {
				return err
			}
			seen += n
		}
	}
	return nil
}

func (t *Tree) scanLeafInto(li int, q index.Query, col *index.Collector, sc *index.Scratch) (int, error) {
	h, err := t.opts.Reader.PinPage(t.leafFile, t.pageNum(li))
	if err != nil {
		return 0, err
	}
	var n int
	if t.packed {
		n, err = index.EvalEncodedPacked(q, h.Data(), t.codec, t.opts.Raw, col, sc)
	} else {
		n, err = index.EvalEncoded(q, h.Data(), t.leaves[li].count, t.codec, t.opts.Raw, col, sc)
	}
	h.Release()
	sc.Trace.NoteProbes("leaf", 1)
	return n, err
}

// leafChunks splits the leaf directory into one contiguous range per
// available worker of the given pool, so each worker keeps the sequential
// access pattern the compact layout buys within its own range.
func (t *Tree) leafChunks(pool *parallel.Pool) [][2]int {
	n := len(t.leaves)
	w := pool.WorkersFor(n)
	chunks := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			chunks = append(chunks, [2]int{lo, hi})
		}
	}
	return chunks
}

// ExactSearch returns the true k nearest neighbors. The approximate phase
// seeds the best-so-far bound, then the entire leaf file is scanned,
// pruning every entry whose squared iSAX lower bound passes the squared
// bound; only survivors pay for a true distance (an early-abandoning
// squared accumulation over the inline payload bytes, or a random raw-file
// fetch into worker scratch when non-materialized). The scan splits into
// one contiguous leaf range per worker — the sequential access pattern of
// Coconut's sortable layout, striped across the pool.
func (t *Tree) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := t.opts.Planner.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	return t.exactCtx(q, k, ctx, t.pool)
}

// ExactSearchCtx answers an exact k-NN query with a caller-managed context
// (already filled for q — see index.SearchCtx.Refill) and a serial scan.
// Batch executors and sharded probes use it to own the parallelism at a
// coarser grain: across queries, or across shards, instead of within one
// scan. Results are byte-identical to ExactSearch.
func (t *Tree) ExactSearchCtx(q index.Query, k int, ctx *index.SearchCtx) ([]index.Result, error) {
	return t.exactCtx(q, k, ctx, index.SerialPool)
}

// ExactSearchColl is ExactSearchCtx returning the collector itself, exact
// squared sums intact, for the sharded merge (see index.CollSearcher).
func (t *Tree) ExactSearchColl(q index.Query, k int, ctx *index.SearchCtx) (*index.Collector, error) {
	return t.exactColl(q, k, ctx, index.SerialPool)
}

// ExactSearchBatch answers one exact k-NN query per element of qs, pipelined
// over the tree's worker pool: each worker slot reuses one search context
// (tables refilled per query, scratch buffers persistent) for every query it
// executes. out[i] is byte-identical to ExactSearch(qs[i], k).
func (t *Tree) ExactSearchBatch(qs []index.Query, k int) ([][]index.Result, error) {
	return index.BatchPlanned(t.opts.Planner, t.pool, t.opts.Config, qs, func(q index.Query, ctx *index.SearchCtx) ([]index.Result, error) {
		return t.ExactSearchCtx(q, k, ctx)
	})
}

// exactCtx is the exact-search core: approximate phase to seed the bound,
// then the pruned scan of the leaf file striped across the given pool.
func (t *Tree) exactCtx(q index.Query, k int, ctx *index.SearchCtx, pool *parallel.Pool) ([]index.Result, error) {
	col, err := t.exactColl(q, k, ctx, pool)
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// exactColl runs the exact search and returns the filled collector.
func (t *Tree) exactColl(q index.Query, k int, ctx *index.SearchCtx, pool *parallel.Pool) (*index.Collector, error) {
	col := index.NewCollector(k)
	if len(t.leaves) == 0 {
		return col, nil
	}
	sp := ctx.Trace.Start("approx")
	if err := t.approxInto(q, k, col, ctx); err != nil {
		return nil, err
	}
	sp.End()
	sp = ctx.Trace.Start("scan")
	chunks := t.leafChunks(pool)
	err := index.FanOut(pool, len(chunks), ctx, col, (*index.Collector).PooledClone, (*index.Collector).MergeRelease,
		func(i int, col *index.Collector, sc *index.Scratch) error {
			return t.exactScanRange(chunks[i][0], chunks[i][1], q, col, sc)
		})
	sp.End()
	if err != nil {
		return nil, err
	}
	return col, nil
}

// exactScanRange scans leaves [lo, hi) with squared lower-bound pruning
// into col, evaluating candidates straight from the pinned page bytes —
// zero copies whether the pin lands in a buffer pool or on the bare disk.
// With planning enabled it applies zone-map skipping: a leaf whose symbol
// envelope's MINDIST bound already exceeds the collector's worst cannot
// contribute (the envelope bound is never larger than any member entry's
// bound, which EvalEncoded would prune anyway), so skipping it drops only
// work, never answers. Skips are committed run-length-aware — see skipRuns.
func (t *Tree) exactScanRange(lo, hi int, q index.Query, col *index.Collector, sc *index.Scratch) error {
	read := func(li int) error {
		h, err := t.opts.Reader.PinPage(t.leafFile, t.pageNum(li))
		if err != nil {
			return err
		}
		if t.packed {
			_, err = index.EvalEncodedPacked(q, h.Data(), t.codec, t.opts.Raw, col, sc)
		} else {
			_, err = index.EvalEncoded(q, h.Data(), t.leaves[li].count, t.codec, t.opts.Raw, col, sc)
		}
		h.Release()
		return err
	}
	if !t.opts.Planner.Enabled() || !t.hasEnv() {
		for li := lo; li < hi; li++ {
			if err := read(li); err != nil {
				return err
			}
		}
		sc.Trace.NoteProbes("leaf", int64(hi-lo))
		return nil
	}
	return t.skipRuns(lo, hi, sc.Trace, read, func(li int) bool {
		mn, mx := t.leafEnv(li)
		return col.SkipSq(sc.P.EnvelopeSq(mn, mx))
	})
}

// interiorSkipRun is the minimum length of an interior run of skippable
// leaves worth actually skipping. Leaves are read in ascending page order,
// so consecutive reads are sequential; skipping m pages mid-range saves m
// sequential reads but turns the next read into a random one (10x under the
// default cost model). Runs at the start or end of a worker's range are
// free to skip — the first read was random anyway, and after the last there
// is nothing to re-enter.
const interiorSkipRun = 12

// skipRuns drives one leaf range through run-length-aware zone-map
// skipping: skippable leaves accumulate into a pending run, committed as an
// actual skip only when the run is leading, trailing, or at least
// interiorSkipRun long — otherwise the pending leaves are read after all,
// in the same ascending order the plain scan uses, so the I/O pattern of a
// declined skip is identical to no planner at all. Deferral never changes
// answers: a leaf marked skippable stays answer-free forever (the
// collector's bound only tightens), and reading it anyway is the unplanned
// behaviour.
func (t *Tree) skipRuns(lo, hi int, tr *obs.QueryTrace, read func(li int) error, skippable func(li int) bool) error {
	pl := t.opts.Planner
	pendStart, pending := 0, 0
	started := false // a leaf in [lo,hi) has actually been read
	skipped := int64(0)
	probed := int64(0)
	defer func() {
		pl.NoteSkips(skipped)
		tr.NoteSkips("leaf", skipped)
		tr.NoteProbes("leaf", probed)
	}()
	for li := lo; li < hi; li++ {
		if skippable(li) {
			if pending == 0 {
				pendStart = li
			}
			pending++
			continue
		}
		if pending > 0 {
			if !started || pending >= interiorSkipRun {
				skipped += int64(pending)
			} else {
				for p := pendStart; p < pendStart+pending; p++ {
					if err := read(p); err != nil {
						return err
					}
					probed++
				}
			}
			pending = 0
		}
		if err := read(li); err != nil {
			return err
		}
		probed++
		started = true
	}
	skipped += int64(pending) // trailing run: nothing re-enters, free
	return nil
}

// RangeSearch returns every indexed series within Euclidean distance eps
// of the query: one pruned scan of the leaf file, striped across the pool
// in contiguous leaf ranges.
func (t *Tree) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	ctx := t.opts.Planner.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	col := index.NewRangeCollector(eps)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	chunks := t.leafChunks(t.pool)
	sp := ctx.Trace.Start("scan")
	err := index.FanOut(t.pool, len(chunks), ctx, col, (*index.RangeCollector).PooledClone, (*index.RangeCollector).MergeRelease,
		func(i int, col *index.RangeCollector, sc *index.Scratch) error {
			return t.rangeScanRange(chunks[i][0], chunks[i][1], q, col, sc)
		})
	sp.End()
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// rangeScanRange scans leaves [lo, hi) with squared epsilon pruning into
// col, zone-map skipping leaves whose envelope bound the epsilon prunes
// (run-length-aware, like exactScanRange).
func (t *Tree) rangeScanRange(lo, hi int, q index.Query, col *index.RangeCollector, sc *index.Scratch) error {
	read := func(li int) error {
		h, err := t.opts.Reader.PinPage(t.leafFile, t.pageNum(li))
		if err != nil {
			return err
		}
		if t.packed {
			err = index.EvalEncodedPackedRange(q, h.Data(), t.codec, t.opts.Raw, col, sc)
		} else {
			err = index.EvalEncodedRange(q, h.Data(), t.leaves[li].count, t.codec, t.opts.Raw, col, sc)
		}
		h.Release()
		return err
	}
	if !t.opts.Planner.Enabled() || !t.hasEnv() {
		for li := lo; li < hi; li++ {
			if err := read(li); err != nil {
				return err
			}
		}
		sc.Trace.NoteProbes("leaf", int64(hi-lo))
		return nil
	}
	return t.skipRuns(lo, hi, sc.Trace, read, func(li int) bool {
		mn, mx := t.leafEnv(li)
		return col.PruneSq(sc.P.EnvelopeSq(mn, mx))
	})
}

var (
	_ index.Index         = (*Tree)(nil)
	_ index.Inserter      = (*Tree)(nil)
	_ index.RangeSearcher = (*Tree)(nil)
	_ index.CtxSearcher   = (*Tree)(nil)
	_ index.CollSearcher  = (*Tree)(nil)
	_ index.BatchSearcher = (*Tree)(nil)
)
