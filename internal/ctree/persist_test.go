package ctree

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/storage"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	ds := buildDataset(t, 800, 31)
	for _, mat := range []bool{false, true} {
		tr, disk := buildTree(t, ds, mat, 0.8)
		if err := tr.Save(); err != nil {
			t.Fatal(err)
		}
		got, err := Open(disk, "ctree", normStore{ds})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != tr.Count() || got.Leaves() != tr.Leaves() {
			t.Fatalf("mat=%v: reopened count=%d leaves=%d, want %d/%d",
				mat, got.Count(), got.Leaves(), tr.Count(), tr.Leaves())
		}
		if got.Name() != tr.Name() {
			t.Fatalf("name %q != %q", got.Name(), tr.Name())
		}
		// Searches on the reopened tree agree with the original.
		rng := rand.New(rand.NewSource(310))
		for trial := 0; trial < 10; trial++ {
			q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(mat))
			want, err := tr.ExactSearch(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.ExactSearch(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(have) {
				t.Fatalf("result counts differ: %d vs %d", len(want), len(have))
			}
			for i := range want {
				if want[i].ID != have[i].ID || math.Abs(want[i].Dist-have[i].Dist) > 1e-12 {
					t.Fatalf("mat=%v trial %d result %d: %+v vs %+v", mat, trial, i, want[i], have[i])
				}
			}
		}
	}
}

func TestSaveOpenAfterSplits(t *testing.T) {
	// Splits break the identity page map; it must persist and restore.
	ds := buildDataset(t, 400, 32)
	disk := storage.NewDisk(0)
	cfg := testConfig(true)
	tr, err := Build(Options{Disk: disk, Config: cfg, FillFactor: 1.0}, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(320))
	for i := 0; i < 80; i++ {
		if err := tr.Insert(gen.RandomWalk(rng, 64), 2); err != nil {
			t.Fatal(err)
		}
	}
	if tr.pageOf == nil {
		t.Fatal("test needs splits to have occurred")
	}
	if err := tr.Save(); err != nil {
		t.Fatal(err)
	}
	got, err := Open(disk, "ctree", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.pageOf == nil {
		t.Fatal("page map not restored")
	}
	s, _ := ds.Get(100)
	res, err := got.ExactSearch(index.NewQuery(s, cfg), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 100 || res[0].Dist > 1e-9 {
		t.Fatalf("reopened search = %+v", res)
	}
	// Reopened tree keeps accepting inserts with fresh IDs.
	if err := got.Insert(gen.RandomWalk(rng, 64), 3); err != nil {
		t.Fatal(err)
	}
	if got.nextID64 != tr.nextID64+1 {
		t.Fatalf("nextID = %d, want %d", got.nextID64, tr.nextID64+1)
	}
}

func TestSaveReplacesExistingMeta(t *testing.T) {
	ds := buildDataset(t, 100, 33)
	tr, disk := buildTree(t, ds, false, 1.0)
	if err := tr.Save(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(); err != nil {
		t.Fatal(err) // second save must overwrite, not fail
	}
	if _, err := Open(disk, "ctree", normStore{ds}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	disk := storage.NewDisk(0)
	if _, err := Open(nil, "x", nil); err == nil {
		t.Fatal("nil disk should fail")
	}
	if _, err := Open(disk, "missing", nil); err == nil {
		t.Fatal("missing meta should fail")
	}
	// Corrupt magic.
	disk.Create("bad.meta")
	disk.AppendPage("bad.meta", []byte("NOTMAGIC0000000000000000"))
	if _, err := Open(disk, "bad", nil); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Valid magic, truncated payload.
	disk.Create("trunc.meta")
	head := append([]byte(metaMagic), 1, 0, 0, 0 /*version*/, 255, 0, 0, 0, 0, 0, 0, 0 /*len 255*/)
	disk.AppendPage("trunc.meta", head)
	if _, err := Open(disk, "trunc", nil); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestOpenDetectsMissingLeafFile(t *testing.T) {
	ds := buildDataset(t, 100, 34)
	tr, disk := buildTree(t, ds, false, 1.0)
	if err := tr.Save(); err != nil {
		t.Fatal(err)
	}
	if err := disk.Remove("ctree.leaves"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, "ctree", normStore{ds}); err == nil {
		t.Fatal("missing leaf file should fail")
	}
}

func TestDiskSnapshotRoundTripWithTree(t *testing.T) {
	// Full persistence pipeline: build -> Save -> snapshot disk to a real
	// file -> load -> Open -> search.
	ds := buildDataset(t, 500, 35)
	tr, disk := buildTree(t, ds, true, 1.0)
	if err := tr.Save(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tree.ccnut")
	if err := disk.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	disk2, err := storage.LoadDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(disk2, "ctree", nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Get(42)
	res, err := got.ExactSearch(index.NewQuery(s, testConfig(true)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 42 || res[0].Dist > 1e-9 {
		t.Fatalf("search after snapshot = %+v", res)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := storage.ReadDisk(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage snapshot should fail")
	}
	if _, err := storage.ReadDisk(bytes.NewReader([]byte("CCNUTDSKxxxx"))); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
}
