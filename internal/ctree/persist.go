package ctree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/sortable"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// Metadata format (stored on the same disk as the leaves, in
// "<name>.meta"):
//
//	magic "CTREEMTA" | version u32 | payload length u64
//	count u64 | nextID u64 | capacity u32 | target u32 | fill f64-bits u64
//	materialized u8 | seriesLen u32 | segments u32 | bits u32
//	leafCount u32 | per leaf: minKey 16B | count u32 | page u64
//	[v2: envPresent u8 | synMin leafCount*segments B | synMax ... B
//	     | synLen u32 | whole-tree synopsis]
//
// Version 2 appends the planner statistics: the flat per-leaf symbol
// envelopes and the whole-tree synopsis. Version-1 files still open; their
// trees simply plan nothing until rebuilt.
//
// Version 3 appends a packed flag byte: 1 when the leaf file uses the
// packed page encoding (record.IsPacked), 0 for fixed-size records.
// Version-1/2 files decode with packed=false, which is what they contain.
const (
	metaMagic   = "CTREEMTA"
	metaVersion = 3
)

// Save persists the tree's directory metadata to "<name>.meta" on its
// disk, so the tree can be reopened (together with the disk snapshot) via
// Open. An existing meta file is replaced.
func (t *Tree) Save() error {
	name := t.opts.Name + ".meta"
	if t.opts.Disk.Exists(name) {
		if err := t.opts.Disk.Remove(name); err != nil {
			return err
		}
	}
	payload := t.encodeMeta()
	head := make([]byte, 0, len(metaMagic)+12+len(payload))
	head = append(head, metaMagic...)
	head = binary.LittleEndian.AppendUint32(head, metaVersion)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(payload)))
	head = append(head, payload...)
	if err := t.opts.Disk.Create(name); err != nil {
		return err
	}
	_, err := t.opts.Disk.AppendPages(name, head)
	return err
}

func (t *Tree) encodeMeta() []byte {
	buf := make([]byte, 0, 64+len(t.leaves)*28)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.nextID64))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.capacity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.target))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.opts.FillFactor))
	if t.opts.Config.Materialized {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.Config.SeriesLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.Config.Segments))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.opts.Config.Bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.leaves)))
	for i, l := range t.leaves {
		buf = l.minKey.AppendBinary(buf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.count))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.pageNum(i)))
	}
	if t.envOK {
		buf = append(buf, 1)
		buf = append(buf, t.synMin...)
		buf = append(buf, t.synMax...)
	} else {
		buf = append(buf, 0)
	}
	if t.syn != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.syn.EncodedSize()))
		buf = t.syn.AppendBinary(buf)
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, 0)
	}
	if t.packed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// Open reconstructs a saved tree from a disk holding "<name>.leaves" and
// "<name>.meta". The caller supplies the Disk and (for non-materialized
// trees) the Raw store; all structural parameters are restored from the
// metadata and validated against opts.Config when that is non-zero.
func Open(disk storage.Backend, name string, raw series.RawStore) (*Tree, error) {
	if disk == nil {
		return nil, fmt.Errorf("ctree: Disk is required")
	}
	if name == "" {
		name = "ctree"
	}
	metaName := name + ".meta"
	npages, err := disk.NumPages(metaName)
	if err != nil {
		return nil, fmt.Errorf("ctree: opening %q: %w", metaName, err)
	}
	raw2 := make([]byte, int(npages)*disk.PageSize())
	if _, err := disk.ReadPages(metaName, 0, int(npages), raw2); err != nil {
		return nil, err
	}
	if len(raw2) < len(metaMagic)+12 {
		return nil, fmt.Errorf("ctree: meta file too short")
	}
	if string(raw2[:len(metaMagic)]) != metaMagic {
		return nil, fmt.Errorf("ctree: bad meta magic %q", raw2[:len(metaMagic)])
	}
	off := len(metaMagic)
	version := binary.LittleEndian.Uint32(raw2[off:])
	if version < 1 || version > metaVersion {
		return nil, fmt.Errorf("ctree: unsupported meta version %d", version)
	}
	off += 4
	plen := int(binary.LittleEndian.Uint64(raw2[off:]))
	off += 8
	if off+plen > len(raw2) {
		return nil, fmt.Errorf("ctree: truncated meta payload: want %d bytes", plen)
	}
	return decodeMeta(disk, name, raw2[off:off+plen], raw, version)
}

func decodeMeta(disk storage.Backend, name string, buf []byte, raw series.RawStore, version uint32) (*Tree, error) {
	const fixed = 8 + 8 + 4 + 4 + 8 + 1 + 4 + 4 + 4 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("ctree: meta payload too short: %d", len(buf))
	}
	t := &Tree{pageBuf: make([]byte, disk.PageSize()), pool: parallel.New(0)}
	t.count = int64(binary.LittleEndian.Uint64(buf))
	t.nextID64 = int64(binary.LittleEndian.Uint64(buf[8:]))
	t.capacity = int(binary.LittleEndian.Uint32(buf[16:]))
	t.target = int(binary.LittleEndian.Uint32(buf[20:]))
	fill := math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	materialized := buf[32] == 1
	seriesLen := int(binary.LittleEndian.Uint32(buf[33:]))
	segments := int(binary.LittleEndian.Uint32(buf[37:]))
	bits := int(binary.LittleEndian.Uint32(buf[41:]))
	leafCount := int(binary.LittleEndian.Uint32(buf[45:]))

	t.opts = Options{
		Disk: disk,
		Name: name,
		Config: index.Config{
			SeriesLen:    seriesLen,
			Segments:     segments,
			Bits:         bits,
			Materialized: materialized,
		},
		FillFactor: fill,
		Raw:        raw,
		Reader:     disk,
	}
	if err := t.opts.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ctree: invalid persisted config: %w", err)
	}
	t.codec = t.opts.Config.Codec()
	t.leafFile = name + ".leaves"
	if !disk.Exists(t.leafFile) {
		return nil, fmt.Errorf("ctree: leaf file %q missing", t.leafFile)
	}

	const perLeaf = sortable.KeyBytes + 4 + 8
	rest := buf[49:]
	if len(rest) < leafCount*perLeaf {
		return nil, fmt.Errorf("ctree: meta truncated: %d leaves need %d bytes, have %d",
			leafCount, leafCount*perLeaf, len(rest))
	}
	identity := true
	t.leaves = make([]leaf, leafCount)
	pages := make([]int64, leafCount)
	var total int64
	for i := 0; i < leafCount; i++ {
		rec := rest[i*perLeaf:]
		t.leaves[i] = leaf{
			minKey: sortable.DecodeKey(rec),
			count:  int(binary.LittleEndian.Uint32(rec[sortable.KeyBytes:])),
		}
		pages[i] = int64(binary.LittleEndian.Uint64(rec[sortable.KeyBytes+4:]))
		if pages[i] != int64(i) {
			identity = false
		}
		total += int64(t.leaves[i].count)
		if i > 0 && t.leaves[i].minKey.Less(t.leaves[i-1].minKey) {
			return nil, fmt.Errorf("ctree: persisted directory out of order at leaf %d", i)
		}
	}
	if total != t.count {
		return nil, fmt.Errorf("ctree: persisted counts inconsistent: leaves hold %d, meta says %d", total, t.count)
	}
	if !identity {
		t.pageOf = pages
	}
	if version >= 2 {
		rest = rest[leafCount*perLeaf:]
		if len(rest) < 1 {
			return nil, fmt.Errorf("ctree: meta truncated at envelope flag")
		}
		envPresent := rest[0] == 1
		rest = rest[1:]
		if envPresent {
			envBytes := leafCount * segments
			if len(rest) < 2*envBytes {
				return nil, fmt.Errorf("ctree: meta truncated in leaf envelopes")
			}
			t.synMin = append([]uint8(nil), rest[:envBytes]...)
			t.synMax = append([]uint8(nil), rest[envBytes:2*envBytes]...)
			rest = rest[2*envBytes:]
			t.envOK = true
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("ctree: meta truncated at synopsis length")
		}
		synLen := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if synLen > 0 {
			if len(rest) < synLen {
				return nil, fmt.Errorf("ctree: meta truncated in synopsis")
			}
			syn, n, err := zonestat.Decode(rest[:synLen])
			if err != nil {
				return nil, err
			}
			if n != synLen {
				return nil, fmt.Errorf("ctree: synopsis length mismatch: %d != %d", n, synLen)
			}
			t.syn = syn
			rest = rest[synLen:]
		}
		if version >= 3 {
			if len(rest) < 1 {
				return nil, fmt.Errorf("ctree: meta truncated at packed flag")
			}
			t.packed = rest[0] == 1
			t.opts.Compress = t.packed
		}
	}
	return t, nil
}
