package ctree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

func testConfig(materialized bool) index.Config {
	return index.Config{SeriesLen: 64, Segments: 8, Bits: 8, Materialized: materialized}
}

// normStore wraps a dataset, z-normalizing on access, matching the
// convention that indexes store z-normalized data.
type normStore struct{ d *series.Dataset }

func (n normStore) Get(id int) (series.Series, error) {
	s, err := n.d.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ZNormalize(), nil
}
func (n normStore) Count() int { return n.d.Count() }

func buildDataset(t *testing.T, n int, seed int64) *series.Dataset {
	t.Helper()
	d := series.NewDataset(64)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		d.Append(gen.RandomWalk(rng, 64))
	}
	return d
}

func buildTree(t *testing.T, ds *series.Dataset, materialized bool, fill float64) (*Tree, *storage.Disk) {
	t.Helper()
	disk := storage.NewDisk(0)
	opts := Options{
		Disk:       disk,
		Config:     testConfig(materialized),
		FillFactor: fill,
		Raw:        normStore{ds},
	}
	tr, err := Build(opts, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr, disk
}

// bruteKNN computes ground-truth nearest neighbors by linear scan over
// z-normalized series.
func bruteKNN(q series.Series, ds *series.Dataset, k int) []index.Result {
	col := index.NewCollector(k)
	zq := q.ZNormalize()
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		d := math.Sqrt(zq.SqDist(s.ZNormalize()))
		col.Add(index.Result{ID: int64(id), Dist: d})
	}
	return col.Results()
}

func TestBuildBasics(t *testing.T) {
	ds := buildDataset(t, 1000, 1)
	tr, _ := buildTree(t, ds, false, 1.0)
	if tr.Count() != 1000 {
		t.Fatalf("count = %d", tr.Count())
	}
	if tr.Name() != "CTree" {
		t.Fatalf("name = %q", tr.Name())
	}
	if tr.Leaves() == 0 {
		t.Fatal("no leaves")
	}
	trM, _ := buildTree(t, ds, true, 1.0)
	if trM.Name() != "CTreeFull" {
		t.Fatalf("materialized name = %q", trM.Name())
	}
	// Materialized entries are bigger, so more leaves.
	if trM.Leaves() <= tr.Leaves() {
		t.Fatalf("materialized leaves %d <= non-materialized %d", trM.Leaves(), tr.Leaves())
	}
}

func TestBuildEmptyAndOptionValidation(t *testing.T) {
	ds := series.NewDataset(64)
	tr, _ := buildTree(t, ds, false, 1.0)
	if tr.Count() != 0 {
		t.Fatal("empty build should have 0 entries")
	}
	res, err := tr.ExactSearch(index.NewQuery(make(series.Series, 64), testConfig(false)), 5)
	if err != nil || len(res) != 0 {
		t.Fatalf("search on empty tree: %v %v", res, err)
	}
	if _, err := Build(Options{}, ds, 0); err == nil {
		t.Fatal("missing disk should fail")
	}
	if _, err := Build(Options{Disk: storage.NewDisk(0), Config: testConfig(false), FillFactor: 1.5}, ds, 0); err == nil {
		t.Fatal("bad fill factor should fail")
	}
	if _, err := Build(Options{Disk: storage.NewDisk(0), Config: index.Config{}}, ds, 0); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestLeavesInKeyOrder(t *testing.T) {
	ds := buildDataset(t, 2000, 2)
	tr, _ := buildTree(t, ds, false, 1.0)
	var prev *leaf
	total := 0
	for li := range tr.leaves {
		entries, err := tr.readLeaf(li)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != tr.leaves[li].count {
			t.Fatalf("leaf %d count mismatch", li)
		}
		if entries[0].Key != tr.leaves[li].minKey {
			t.Fatalf("leaf %d minKey mismatch", li)
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].Less(entries[i-1]) {
				t.Fatalf("leaf %d not internally sorted", li)
			}
		}
		if prev != nil && entries[0].Key.Less(prev.minKey) {
			t.Fatalf("leaf %d out of order with previous", li)
		}
		l := tr.leaves[li]
		prev = &l
		total += len(entries)
	}
	if total != 2000 {
		t.Fatalf("total entries %d", total)
	}
}

func TestFillFactorLeafCount(t *testing.T) {
	ds := buildDataset(t, 2000, 3)
	full, _ := buildTree(t, ds, false, 1.0)
	half, _ := buildTree(t, ds, false, 0.5)
	if half.Leaves() <= full.Leaves() {
		t.Fatalf("fill 0.5 leaves %d <= fill 1.0 leaves %d", half.Leaves(), full.Leaves())
	}
	// Roughly double.
	ratio := float64(half.Leaves()) / float64(full.Leaves())
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("leaf ratio = %v, want ~2", ratio)
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	ds := buildDataset(t, 500, 4)
	for _, mat := range []bool{false, true} {
		tr, _ := buildTree(t, ds, mat, 1.0)
		rng := rand.New(rand.NewSource(40))
		for trial := 0; trial < 20; trial++ {
			q := gen.RandomWalk(rng, 64)
			want := bruteKNN(q, ds, 5)
			got, err := tr.ExactSearch(index.NewQuery(q, testConfig(mat)), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("mat=%v trial %d: got %d results, want %d", mat, trial, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("mat=%v trial %d result %d: dist %v, want %v (id %d vs %d)",
						mat, trial, i, got[i].Dist, want[i].Dist, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestExactSearchSelfQuery(t *testing.T) {
	ds := buildDataset(t, 300, 5)
	tr, _ := buildTree(t, ds, false, 1.0)
	// Querying with a stored series must return it at distance ~0.
	s, _ := ds.Get(123)
	got, err := tr.ExactSearch(index.NewQuery(s, testConfig(false)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 123 || got[0].Dist > 1e-9 {
		t.Fatalf("self query = %+v", got)
	}
}

func TestApproxSearchQuality(t *testing.T) {
	ds := buildDataset(t, 1000, 6)
	tr, _ := buildTree(t, ds, true, 1.0)
	rng := rand.New(rand.NewSource(60))
	// Approximate search on a slightly perturbed stored series should find
	// the original most of the time (they share a summarization region).
	hits := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		id := rng.Intn(ds.Count())
		base, _ := ds.Get(id)
		q := gen.Add(base, gen.Noise(rng, 64, 0.001))
		got, err := tr.ApproxSearch(index.NewQuery(q, testConfig(true)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == int64(id) {
			hits++
		}
	}
	if hits < trials*5/10 {
		t.Errorf("approximate search found the planted neighbor %d/%d times", hits, trials)
	}
}

func TestApproxSearchReturnsK(t *testing.T) {
	ds := buildDataset(t, 500, 7)
	tr, _ := buildTree(t, ds, false, 1.0)
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(70)), 64), testConfig(false))
	got, err := tr.ApproxSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("approx returned %d results, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestApproxSearchFewerThanK(t *testing.T) {
	ds := buildDataset(t, 3, 8)
	tr, _ := buildTree(t, ds, false, 1.0)
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(80)), 64), testConfig(false))
	got, err := tr.ApproxSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want all 3", len(got))
	}
}

func TestExactBeatsOrEqualsApprox(t *testing.T) {
	ds := buildDataset(t, 800, 9)
	tr, _ := buildTree(t, ds, true, 1.0)
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 20; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(true))
		ap, err := tr.ApproxSearch(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := tr.ExactSearch(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex) > 0 && len(ap) > 0 && ex[0].Dist > ap[0].Dist+1e-9 {
			t.Fatalf("trial %d: exact %v worse than approx %v", trial, ex[0].Dist, ap[0].Dist)
		}
	}
}

func TestInsertThenSearch(t *testing.T) {
	ds := buildDataset(t, 400, 10)
	// Fill factor 0.5 leaves room for inserts.
	disk := storage.NewDisk(0)
	cfg := testConfig(true)
	tr, err := Build(Options{Disk: disk, Config: cfg, FillFactor: 0.5}, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	extra := make([]series.Series, 50)
	for i := range extra {
		extra[i] = gen.RandomWalk(rng, 64)
		if err := tr.Insert(extra[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 450 {
		t.Fatalf("count after inserts = %d", tr.Count())
	}
	// Each inserted series must now be findable exactly.
	for i, s := range extra {
		got, err := tr.ExactSearch(index.NewQuery(s, cfg), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Dist > 1e-9 {
			t.Fatalf("inserted series %d not found: %+v", i, got)
		}
		if got[0].TS != 1 {
			t.Fatalf("inserted series %d TS = %d", i, got[0].TS)
		}
	}
}

func TestInsertSplits(t *testing.T) {
	ds := buildDataset(t, 500, 11)
	disk := storage.NewDisk(0)
	cfg := testConfig(true) // big entries, few per page -> splits happen fast
	tr, err := Build(Options{Disk: disk, Config: cfg, FillFactor: 1.0}, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Leaves()
	rng := rand.New(rand.NewSource(110))
	for i := 0; i < 100; i++ {
		if err := tr.Insert(gen.RandomWalk(rng, 64), 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Leaves() <= before {
		t.Fatalf("full tree did not split: %d -> %d leaves", before, tr.Leaves())
	}
	// Directory still in key order and searches still correct vs brute force
	// over a reconstructed view: verify self-queries.
	for li := 1; li < len(tr.leaves); li++ {
		if tr.leaves[li].minKey.Less(tr.leaves[li-1].minKey) {
			t.Fatal("directory out of order after splits")
		}
	}
}

func TestInsertIntoEmptyTree(t *testing.T) {
	disk := storage.NewDisk(0)
	cfg := testConfig(true)
	tr, err := Build(Options{Disk: disk, Config: cfg}, series.NewDataset(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := gen.RandomWalk(rand.New(rand.NewSource(120)), 64)
	if err := tr.Insert(s, 5); err != nil {
		t.Fatal(err)
	}
	got, err := tr.ExactSearch(index.NewQuery(s, cfg), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist > 1e-9 || got[0].TS != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestWindowedSearch(t *testing.T) {
	// Build with per-ID timestamps, then restrict queries by window.
	ds := buildDataset(t, 200, 12)
	disk := storage.NewDisk(0)
	cfg := testConfig(true)
	tr, err := BuildTS(Options{Disk: disk, Config: cfg}, ds, func(id int) int64 { return int64(id) })
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Get(50)
	q := index.NewQuery(s, cfg)
	// Unwindowed: finds ID 50 at distance 0.
	got, _ := tr.ExactSearch(q, 1)
	if got[0].ID != 50 {
		t.Fatalf("unwindowed best = %d", got[0].ID)
	}
	// Window excluding TS 50: must not return it.
	got, err = tr.ExactSearch(q.WithWindow(100, 199), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID == 50 || got[0].TS < 100 {
		t.Fatalf("windowed search returned %+v", got)
	}
	// Approximate honors windows too.
	ap, err := tr.ApproxSearch(q.WithWindow(100, 199), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ap {
		if r.TS < 100 || r.TS > 199 {
			t.Fatalf("approx result outside window: %+v", r)
		}
	}
}

func TestBuildSequentialIO(t *testing.T) {
	// Construction must be dominated by sequential I/O: that is the claim.
	ds := buildDataset(t, 5000, 13)
	disk := storage.NewDisk(0)
	tr, err := Build(Options{Disk: disk, Config: testConfig(false), Raw: normStore{ds}}, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	st := disk.Stats()
	seq := st.SeqReads + st.SeqWrites
	rnd := st.RandReads + st.RandWrites
	if seq < 20*rnd {
		t.Errorf("construction I/O: %d sequential vs %d random; expected overwhelmingly sequential", seq, rnd)
	}
}

func TestExactSearchPrunes(t *testing.T) {
	// With materialized entries the exact search should compute true
	// distances for far fewer entries than the dataset size. We proxy this
	// via I/O: the scan reads each leaf page once, sequentially.
	ds := buildDataset(t, 3000, 14)
	tr, disk := buildTree(t, ds, true, 1.0)
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(140)), 64), testConfig(true))
	disk.ResetStats()
	if _, err := tr.ExactSearch(q, 1); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	// Leaf file scan: ~Leaves() reads; approx adds a couple.
	maxReads := int64(tr.Leaves()) + 10
	if st.Reads() > maxReads {
		t.Errorf("exact search read %d pages, want <= %d", st.Reads(), maxReads)
	}
	if st.Writes() != 0 {
		t.Errorf("search performed %d writes", st.Writes())
	}
}
