package sax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/series"
)

func TestBreakpointsProperties(t *testing.T) {
	for bits := 1; bits <= MaxBits; bits++ {
		card := 1 << bits
		bp := Breakpoints(card)
		if len(bp) != card-1 {
			t.Fatalf("card %d: %d breakpoints, want %d", card, len(bp), card-1)
		}
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("card %d: breakpoints not increasing at %d", card, i)
			}
		}
		// Symmetric about zero.
		for i := range bp {
			if !almostEq(bp[i], -bp[len(bp)-1-i], 1e-9) {
				t.Fatalf("card %d: breakpoints not symmetric", card)
			}
		}
	}
}

func TestBreakpointsMedian(t *testing.T) {
	bp := Breakpoints(2)
	if !almostEq(bp[0], 0, 1e-12) {
		t.Errorf("cardinality-2 breakpoint = %v, want 0", bp[0])
	}
	bp4 := Breakpoints(4)
	// N(0,1) quartiles: ±0.6745, 0
	if !almostEq(bp4[1], 0, 1e-12) {
		t.Errorf("cardinality-4 median = %v, want 0", bp4[1])
	}
	if !almostEq(bp4[0], -0.6744897501960817, 1e-9) {
		t.Errorf("cardinality-4 lower quartile = %v", bp4[0])
	}
}

func TestBreakpointsNesting(t *testing.T) {
	// Quantiles at cardinality 2^(b-1) must be a subset of those at 2^b.
	for bits := 2; bits <= MaxBits; bits++ {
		coarse := Breakpoints(1 << (bits - 1))
		fine := Breakpoints(1 << bits)
		for i, v := range coarse {
			if !almostEq(v, fine[2*i+1], 1e-9) {
				t.Fatalf("bits %d: coarse[%d]=%v != fine[%d]=%v", bits, i, v, 2*i+1, fine[2*i+1])
			}
		}
	}
}

func TestBreakpointsPanics(t *testing.T) {
	for _, c := range []int{0, 1, 257, 1 << 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Breakpoints(%d) should panic", c)
				}
			}()
			Breakpoints(c)
		}()
	}
}

func TestPAAExact(t *testing.T) {
	s := series.Series{1, 1, 2, 2, 3, 3, 4, 4}
	paa := PAA(s, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if !almostEq(paa[i], want[i], 1e-12) {
			t.Errorf("paa[%d] = %v, want %v", i, paa[i], want[i])
		}
	}
}

func TestPAANonDivisible(t *testing.T) {
	s := series.Series{1, 2, 3}
	paa := PAA(s, 2)
	// widths 1.5: seg0 = (1*1 + 2*0.5)/1.5 = 4/3; seg1 = (2*0.5 + 3*1)/1.5 = 8/3
	if !almostEq(paa[0], 4.0/3.0, 1e-9) || !almostEq(paa[1], 8.0/3.0, 1e-9) {
		t.Errorf("paa = %v, want [1.333 2.667]", paa)
	}
}

func TestPAAMeanPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := make(series.Series, 96)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	for _, w := range []int{1, 2, 3, 4, 8, 16, 96} {
		paa := PAA(s, w)
		sum := 0.0
		for _, v := range paa {
			sum += v
		}
		if !almostEq(sum/float64(w), s.Mean(), 1e-9) {
			t.Errorf("w=%d: PAA mean %v != series mean %v", w, sum/float64(w), s.Mean())
		}
	}
}

func TestSymbolBoundaries(t *testing.T) {
	// Cardinality 2: below 0 -> 0, at/above 0 -> 1.
	if Symbol(-0.1, 2) != 0 || Symbol(0.1, 2) != 1 || Symbol(0, 2) != 1 {
		t.Error("cardinality-2 symbol boundaries wrong")
	}
	// Extremes land in the outermost regions.
	if Symbol(-100, 256) != 0 {
		t.Error("very low value should be region 0")
	}
	if Symbol(100, 256) != 255 {
		t.Error("very high value should be region 255")
	}
}

func TestSymbolMonotone(t *testing.T) {
	for bits := 1; bits <= MaxBits; bits++ {
		card := 1 << bits
		prev := uint8(0)
		for v := -4.0; v <= 4.0; v += 0.01 {
			s := Symbol(v, card)
			if s < prev {
				t.Fatalf("card %d: symbol not monotone at %v", card, v)
			}
			prev = s
		}
	}
}

func TestPromoteNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := make(series.Series, 64)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		full := FromSeries(s, 8, 8)
		for bits := 1; bits <= 8; bits++ {
			direct := FromSeries(s, 8, bits)
			promoted := full.Promote(bits)
			for i := range direct.Symbols {
				if direct.Symbols[i] != promoted.Symbols[i] {
					t.Fatalf("trial %d bits %d seg %d: direct %d != promoted %d",
						trial, bits, i, direct.Symbols[i], promoted.Symbols[i])
				}
			}
		}
	}
}

func TestPromotePanics(t *testing.T) {
	w := Word{Symbols: []uint8{0}, Bits: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic promoting to more bits")
		}
	}()
	w.Promote(3)
}

func TestRegion(t *testing.T) {
	lo, hi := Region(0, 1)
	if !math.IsInf(lo, -1) || hi != 0 {
		t.Errorf("region 0 bits 1 = [%v,%v), want [-Inf,0)", lo, hi)
	}
	lo, hi = Region(1, 1)
	if lo != 0 || !math.IsInf(hi, 1) {
		t.Errorf("region 1 bits 1 = [%v,%v), want [0,+Inf)", lo, hi)
	}
}

func TestRegionCoversSymbol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64() * 2
		for bits := 1; bits <= MaxBits; bits++ {
			sym := Symbol(v, 1<<bits)
			lo, hi := Region(sym, bits)
			if v < lo || v >= hi {
				// Boundary: hi is exclusive except both may equal at breakpoints
				if !(v == hi) {
					t.Fatalf("value %v not in region [%v,%v) of its own symbol", v, lo, hi)
				}
			}
		}
	}
}

// The key invariant of the whole infrastructure: MINDIST never exceeds the
// true Euclidean distance (lower-bounding lemma).
func TestMinDistLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, w = 128, 16
	for trial := 0; trial < 500; trial++ {
		a := randomWalk(rng, n).ZNormalize()
		b := randomWalk(rng, n).ZNormalize()
		trueDist := math.Sqrt(a.SqDist(b))
		paaA := PAA(a, w)
		for bits := 1; bits <= MaxBits; bits++ {
			wb := FromSeries(b, w, bits)
			lb := MinDistPAA(paaA, wb, n)
			if lb > trueDist+1e-9 {
				t.Fatalf("trial %d bits %d: MINDIST %v > true %v", trial, bits, lb, trueDist)
			}
			wa := FromSeries(a, w, bits)
			lbw := MinDistWords(wa, wb, n)
			if lbw > trueDist+1e-9 {
				t.Fatalf("trial %d bits %d: word MINDIST %v > true %v", trial, bits, lbw, trueDist)
			}
			// Word-word bound is never tighter than PAA-word bound.
			if lbw > lb+1e-9 {
				t.Fatalf("trial %d bits %d: word bound %v > paa bound %v", trial, bits, lbw, lb)
			}
		}
	}
}

func TestMinDistTighterWithMoreBits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, w = 128, 16
	for trial := 0; trial < 100; trial++ {
		a := randomWalk(rng, n).ZNormalize()
		b := randomWalk(rng, n).ZNormalize()
		paaA := PAA(a, w)
		wb := FromSeries(b, w, MaxBits)
		prev := -1.0
		for bits := 1; bits <= MaxBits; bits++ {
			lb := MinDistPAA(paaA, wb.Promote(bits), n)
			if lb+1e-9 < prev {
				t.Fatalf("trial %d: bound shrank from %v to %v at %d bits", trial, prev, lb, bits)
			}
			prev = lb
		}
	}
}

func TestMinDistSameWordIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomWalk(rng, 64).ZNormalize()
	w := FromSeries(s, 8, 4)
	if d := MinDistWords(w, w, 64); d != 0 {
		t.Errorf("MINDIST of word with itself = %v, want 0", d)
	}
	paa := PAA(s, 8)
	if d := MinDistPAA(paa, w, 64); d != 0 {
		t.Errorf("MINDIST of series with own word = %v, want 0", d)
	}
}

func TestWordString(t *testing.T) {
	w := Word{Symbols: []uint8{0, 3, 2}, Bits: 2}
	if got := w.String(); got != "00 11 10" {
		t.Errorf("String() = %q, want %q", got, "00 11 10")
	}
}

func TestPropertySymbolRegionInverse(t *testing.T) {
	f := func(raw float64, bitsRaw uint8) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 10)
		bits := int(bitsRaw%MaxBits) + 1
		sym := Symbol(v, 1<<bits)
		lo, hi := Region(sym, bits)
		return v >= lo && (v < hi || v == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomWalk(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
