package sax

import (
	"sync"
	"testing"
)

// TestBreakpointsConcurrent hammers Breakpoints from many goroutines with
// non-power-of-two cardinalities — the access pattern that raced when the
// cache was a lazily written map. The cache is now a read-only array
// populated fully at init, so this passes under -race.
func TestBreakpointsConcurrent(t *testing.T) {
	cards := []int{2, 3, 5, 7, 13, 100, 255, 256}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := cards[(g+i)%len(cards)]
				bp := Breakpoints(c)
				if len(bp) != c-1 {
					t.Errorf("Breakpoints(%d) has %d entries", c, len(bp))
					return
				}
				for j := 1; j < len(bp); j++ {
					if bp[j] <= bp[j-1] {
						t.Errorf("Breakpoints(%d) not increasing at %d", c, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
