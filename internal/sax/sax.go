// Package sax implements the iSAX (indexable Symbolic Aggregate
// approXimation) summarization of data series: Piecewise Aggregate
// Approximation (PAA), equi-probable Gaussian breakpoints, iSAX words with
// power-of-two cardinalities, and the MINDIST lower-bounding distance.
//
// Symbols are the natural binary index of the breakpoint region, counted
// from the lowest region. Because the Gaussian quantiles at cardinality
// 2^(b-1) are a subset of those at 2^b, the (b-1)-bit prefix of a b-bit
// symbol is exactly the symbol at the coarser cardinality; this nesting is
// what makes bit-interleaving (package sortable) meaningful.
package sax

import (
	"fmt"
	"math"

	"repro/internal/series"
)

// MaxBits is the maximum per-segment cardinality in bits supported (256
// regions), matching the iSAX 2.0 convention.
const MaxBits = 8

// Breakpoints returns the cardinality-1 breakpoints that divide the standard
// normal distribution into cardinality equi-probable regions, in increasing
// order. The cache is a fixed array populated fully at init and read-only
// afterwards, so concurrent searches may call Breakpoints freely. Callers
// must not modify the returned slice.
func Breakpoints(cardinality int) []float64 {
	if cardinality < 2 || cardinality > 1<<MaxBits {
		panic(fmt.Sprintf("sax: cardinality %d out of range [2,%d]", cardinality, 1<<MaxBits))
	}
	return bpCache[cardinality]
}

// bpCache[c] holds the breakpoints for cardinality c, for every c in
// [2, 2^MaxBits]. It is written only by init; all later access is read-only,
// which is what makes Breakpoints safe under the parallel query engine.
var bpCache [1<<MaxBits + 1][]float64

func init() {
	for c := 2; c <= 1<<MaxBits; c++ {
		bp := make([]float64, c-1)
		for i := 1; i < c; i++ {
			p := float64(i) / float64(c)
			bp[i-1] = math.Sqrt2 * math.Erfinv(2*p-1)
		}
		bpCache[c] = bp
	}
}

// PAA computes the Piecewise Aggregate Approximation of s with w segments:
// the mean of each of w equal-width chunks. len(s) need not be divisible by
// w; fractional points are weighted across neighbouring segments.
func PAA(s series.Series, w int) []float64 {
	n := len(s)
	if w <= 0 || n == 0 {
		panic(fmt.Sprintf("sax: invalid PAA arguments n=%d w=%d", n, w))
	}
	out := make([]float64, w)
	if n%w == 0 {
		seg := n / w
		for i := 0; i < w; i++ {
			sum := 0.0
			for j := i * seg; j < (i+1)*seg; j++ {
				sum += s[j]
			}
			out[i] = sum / float64(seg)
		}
		return out
	}
	// General case: weighted split of points across segment boundaries.
	width := float64(n) / float64(w)
	for i := 0; i < w; i++ {
		lo := float64(i) * width
		hi := lo + width
		sum := 0.0
		for j := int(lo); j < n && float64(j) < hi; j++ {
			l := math.Max(lo, float64(j))
			h := math.Min(hi, float64(j+1))
			if h > l {
				sum += s[j] * (h - l)
			}
		}
		out[i] = sum / width
	}
	return out
}

// Symbol maps a PAA value to its region index at the given cardinality:
// the number of breakpoints strictly below the value, in [0, cardinality).
func Symbol(v float64, cardinality int) uint8 {
	bp := Breakpoints(cardinality)
	// Binary search: first breakpoint > v gives the region.
	lo, hi := 0, len(bp)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < bp[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

// Word is an iSAX word: one symbol per segment, each at Bits cardinality
// bits (all segments share the same cardinality here, the layout used by
// Coconut's sortable keys; per-segment cardinalities appear in the ADS+
// baseline via prefix masking).
type Word struct {
	Symbols []uint8 // region index per segment, at Bits bits each
	Bits    int     // cardinality bits per segment, 1..MaxBits
}

// FromSeries summarizes a (typically z-normalized) series into an iSAX word
// with w segments at bits cardinality bits per segment.
func FromSeries(s series.Series, w, bits int) Word {
	return FromPAA(PAA(s, w), bits)
}

// FromPAA converts PAA coefficients to an iSAX word.
func FromPAA(paa []float64, bits int) Word {
	if bits < 1 || bits > MaxBits {
		panic(fmt.Sprintf("sax: bits %d out of range [1,%d]", bits, MaxBits))
	}
	card := 1 << bits
	syms := make([]uint8, len(paa))
	for i, v := range paa {
		syms[i] = Symbol(v, card)
	}
	return Word{Symbols: syms, Bits: bits}
}

// Promote returns the word re-expressed at a coarser cardinality (fewer
// bits) by truncating each symbol to its high-order prefix. bits must be
// <= w.Bits.
func (w Word) Promote(bits int) Word {
	if bits > w.Bits || bits < 1 {
		panic(fmt.Sprintf("sax: cannot promote from %d to %d bits", w.Bits, bits))
	}
	shift := uint(w.Bits - bits)
	syms := make([]uint8, len(w.Symbols))
	for i, s := range w.Symbols {
		syms[i] = s >> shift
	}
	return Word{Symbols: syms, Bits: bits}
}

// Region returns the value interval [lo, hi) covered by symbol sym at the
// given cardinality bits. The lowest region extends to -Inf and the highest
// to +Inf.
func Region(sym uint8, bits int) (lo, hi float64) {
	card := 1 << bits
	bp := Breakpoints(card)
	if int(sym) == 0 {
		lo = math.Inf(-1)
	} else {
		lo = bp[sym-1]
	}
	if int(sym) == card-1 {
		hi = math.Inf(1)
	} else {
		hi = bp[sym]
	}
	return lo, hi
}

// MinDistPAA returns the lower bound on the Euclidean distance between the
// original series (length n) whose PAA is paa, and any series summarized by
// word w. This is the classic iSAX MINDIST: per-segment distance to the
// symbol's region, scaled by sqrt(n/w).
func MinDistPAA(paa []float64, w Word, n int) float64 {
	if len(paa) != len(w.Symbols) {
		panic(fmt.Sprintf("sax: segment mismatch %d vs %d", len(paa), len(w.Symbols)))
	}
	acc := 0.0
	for i, v := range paa {
		lo, hi := Region(w.Symbols[i], w.Bits)
		var d float64
		switch {
		case v < lo:
			d = lo - v
		case v > hi:
			d = v - hi
		}
		acc += d * d
	}
	return math.Sqrt(float64(n) / float64(len(paa)) * acc)
}

// MinDistWords returns a lower bound on the Euclidean distance between any
// two series summarized by words a and b (which may have different
// cardinalities but must have the same segment count), for original series
// length n.
func MinDistWords(a, b Word, n int) float64 {
	if len(a.Symbols) != len(b.Symbols) {
		panic(fmt.Sprintf("sax: segment mismatch %d vs %d", len(a.Symbols), len(b.Symbols)))
	}
	acc := 0.0
	for i := range a.Symbols {
		alo, ahi := Region(a.Symbols[i], a.Bits)
		blo, bhi := Region(b.Symbols[i], b.Bits)
		var d float64
		switch {
		case alo > bhi:
			d = alo - bhi
		case blo > ahi:
			d = blo - ahi
		}
		acc += d * d
	}
	return math.Sqrt(float64(n) / float64(len(a.Symbols)) * acc)
}

// String renders the word as space-separated binary symbols, the notation
// used in the iSAX literature.
func (w Word) String() string {
	out := make([]byte, 0, len(w.Symbols)*(w.Bits+1))
	for i, s := range w.Symbols {
		if i > 0 {
			out = append(out, ' ')
		}
		for b := w.Bits - 1; b >= 0; b-- {
			out = append(out, '0'+(s>>uint(b))&1)
		}
	}
	return string(out)
}
