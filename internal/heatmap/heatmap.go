// Package heatmap records page-access traces from the storage layer and
// renders them as heat maps — the demo's access-pattern visualization that
// "allows users to appreciate how the structural properties of an index
// affect query performance". The recorder implements storage.Tracer; the
// renderer produces an ASCII map (for the CLI) and a JSON-friendly matrix
// (for the REST server).
package heatmap

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Recorder accumulates per-page access counts by file. It is safe for
// concurrent use and implements storage.Tracer.
type Recorder struct {
	mu     sync.Mutex
	files  map[string]map[int64]int // file -> page -> count
	order  []accessEvent            // chronological trace for jump analysis
	record bool
}

type accessEvent struct {
	file  string
	page  int64
	write bool
}

// NewRecorder creates an empty recorder that also keeps the chronological
// trace (needed for seek/jump statistics).
func NewRecorder() *Recorder {
	return &Recorder{files: make(map[string]map[int64]int), record: true}
}

// Access implements storage.Tracer.
func (r *Recorder) Access(file string, page int64, write bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.files[file]
	if !ok {
		m = make(map[int64]int)
		r.files[file] = m
	}
	m[page]++
	if r.record {
		r.order = append(r.order, accessEvent{file, page, write})
	}
}

// Reset discards all recorded accesses.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files = make(map[string]map[int64]int)
	r.order = nil
}

// Files returns the traced file names, sorted.
func (r *Recorder) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.files))
	for f := range r.files {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Total returns the total number of recorded accesses.
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.files {
		for _, c := range m {
			n += c
		}
	}
	return n
}

// Map is a rendered heat map: access counts bucketed over the page space of
// one file (or all files concatenated).
type Map struct {
	File    string `json:"file"`
	Buckets []int  `json:"buckets"` // access count per bucket
	Pages   int64  `json:"pages"`   // page span covered
	Max     int    `json:"max"`     // hottest bucket count
}

// Render buckets the accesses of one file into `buckets` cells spanning
// pages [0, maxPage]. Cell i covers pages [i*span, (i+1)*span).
func (r *Recorder) Render(file string, buckets int) Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Map{File: file}
	counts := r.files[file]
	if len(counts) == 0 || buckets < 1 {
		m.Buckets = make([]int, max(1, buckets))
		return m
	}
	var maxPage int64
	for p := range counts {
		if p > maxPage {
			maxPage = p
		}
	}
	m.Pages = maxPage + 1
	m.Buckets = make([]int, buckets)
	span := float64(m.Pages) / float64(buckets)
	for p, c := range counts {
		b := int(float64(p) / span)
		if b >= buckets {
			b = buckets - 1
		}
		m.Buckets[b] += c
	}
	for _, c := range m.Buckets {
		if c > m.Max {
			m.Max = c
		}
	}
	return m
}

// shades orders ASCII intensity levels from cold to hot.
const shades = " .:-=+*#%@"

// ASCII renders the map as one line of intensity characters plus a legend.
func (m Map) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s |", m.File)
	for _, c := range m.Buckets {
		if m.Max == 0 {
			b.WriteByte(' ')
			continue
		}
		idx := c * (len(shades) - 1) / m.Max
		b.WriteByte(shades[idx])
	}
	fmt.Fprintf(&b, "| %d pages, max %d hits/bucket", m.Pages, m.Max)
	return b.String()
}

// JumpStats summarize the chronological trace: how far the head moved
// between consecutive accesses. Contiguous layouts show short jumps.
type JumpStats struct {
	Accesses   int     `json:"accesses"`
	FileSwaps  int     `json:"file_swaps"`  // consecutive accesses on different files
	AvgJump    float64 `json:"avg_jump"`    // mean |page delta| within a file
	SeqFrac    float64 `json:"seq_frac"`    // fraction of accesses at delta 0 or +1
	WriteShare float64 `json:"write_share"` // fraction of accesses that were writes
}

// Jumps computes JumpStats over the chronological trace.
func (r *Recorder) Jumps() JumpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s JumpStats
	s.Accesses = len(r.order)
	if s.Accesses == 0 {
		return s
	}
	writes := 0
	var jumpSum float64
	jumpN := 0
	seq := 0
	for i, ev := range r.order {
		if ev.write {
			writes++
		}
		if i == 0 {
			continue
		}
		prev := r.order[i-1]
		if prev.file != ev.file {
			s.FileSwaps++
			continue
		}
		d := ev.page - prev.page
		if d == 0 || d == 1 {
			seq++
		}
		if d < 0 {
			d = -d
		}
		jumpSum += float64(d)
		jumpN++
	}
	if jumpN > 0 {
		s.AvgJump = jumpSum / float64(jumpN)
	}
	s.SeqFrac = float64(seq) / float64(s.Accesses-1)
	s.WriteShare = float64(writes) / float64(s.Accesses)
	return s
}

// RenderAll renders every traced file, sorted by name.
func (r *Recorder) RenderAll(buckets int) []Map {
	files := r.Files()
	out := make([]Map, 0, len(files))
	for _, f := range files {
		out = append(out, r.Render(f, buckets))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
