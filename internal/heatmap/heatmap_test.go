package heatmap

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func TestRecorderCountsAndFiles(t *testing.T) {
	r := NewRecorder()
	r.Access("a", 0, false)
	r.Access("a", 1, false)
	r.Access("b", 0, true)
	if r.Total() != 3 {
		t.Fatalf("total = %d", r.Total())
	}
	files := r.Files()
	if len(files) != 2 || files[0] != "a" || files[1] != "b" {
		t.Fatalf("files = %v", files)
	}
	r.Reset()
	if r.Total() != 0 || len(r.Files()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRenderBuckets(t *testing.T) {
	r := NewRecorder()
	// 100 pages; hit page 0 ten times, page 99 once.
	for i := 0; i < 10; i++ {
		r.Access("f", 0, false)
	}
	r.Access("f", 99, false)
	m := r.Render("f", 10)
	if m.Pages != 100 {
		t.Fatalf("pages = %d", m.Pages)
	}
	if m.Buckets[0] != 10 || m.Buckets[9] != 1 {
		t.Fatalf("buckets = %v", m.Buckets)
	}
	for i := 1; i < 9; i++ {
		if m.Buckets[i] != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, m.Buckets[i])
		}
	}
	if m.Max != 10 {
		t.Fatalf("max = %d", m.Max)
	}
}

func TestRenderEmptyAndUnknownFile(t *testing.T) {
	r := NewRecorder()
	m := r.Render("missing", 5)
	if len(m.Buckets) != 5 || m.Max != 0 {
		t.Fatalf("empty render = %+v", m)
	}
	m = r.Render("missing", 0)
	if len(m.Buckets) != 1 {
		t.Fatal("zero buckets should clamp to 1")
	}
}

func TestASCII(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Access("f", 0, false)
	}
	r.Access("f", 9, false)
	line := r.Render("f", 10).ASCII()
	if !strings.Contains(line, "@") {
		t.Errorf("hottest bucket should render @: %q", line)
	}
	if !strings.Contains(line, "f") {
		t.Errorf("file name missing: %q", line)
	}
	// Empty map renders blanks without panicking.
	empty := Map{File: "x", Buckets: make([]int, 4)}
	if !strings.Contains(empty.ASCII(), "x") {
		t.Error("empty ASCII missing name")
	}
}

func TestJumpsSequentialVsRandom(t *testing.T) {
	seqR := NewRecorder()
	for i := int64(0); i < 100; i++ {
		seqR.Access("f", i, false)
	}
	seq := seqR.Jumps()
	if seq.SeqFrac < 0.99 {
		t.Fatalf("sequential trace seqFrac = %v", seq.SeqFrac)
	}
	if seq.AvgJump > 1.01 {
		t.Fatalf("sequential trace avgJump = %v", seq.AvgJump)
	}

	rndR := NewRecorder()
	pages := []int64{0, 50, 3, 97, 12, 88}
	for _, p := range pages {
		rndR.Access("f", p, false)
	}
	rnd := rndR.Jumps()
	if rnd.SeqFrac > 0.2 {
		t.Fatalf("random trace seqFrac = %v", rnd.SeqFrac)
	}
	if rnd.AvgJump < 10 {
		t.Fatalf("random trace avgJump = %v", rnd.AvgJump)
	}
}

func TestJumpsFileSwapsAndWrites(t *testing.T) {
	r := NewRecorder()
	r.Access("a", 0, true)
	r.Access("b", 0, false)
	r.Access("a", 1, true)
	s := r.Jumps()
	if s.FileSwaps != 2 {
		t.Fatalf("file swaps = %d", s.FileSwaps)
	}
	if s.WriteShare < 0.6 || s.WriteShare > 0.7 {
		t.Fatalf("write share = %v", s.WriteShare)
	}
	if NewRecorder().Jumps().Accesses != 0 {
		t.Fatal("empty jumps should be zero")
	}
}

func TestIntegratesWithDisk(t *testing.T) {
	d := storage.NewDisk(64)
	rec := NewRecorder()
	d.SetTracer(rec)
	d.Create("f")
	for i := 0; i < 20; i++ {
		d.AppendPage("f", []byte{byte(i)})
	}
	buf := make([]byte, 64)
	for i := int64(0); i < 20; i++ {
		d.ReadPage("f", i, buf)
	}
	if rec.Total() != 40 {
		t.Fatalf("traced %d accesses, want 40", rec.Total())
	}
	maps := rec.RenderAll(5)
	if len(maps) != 1 || maps[0].File != "f" {
		t.Fatalf("RenderAll = %+v", maps)
	}
	for i, b := range maps[0].Buckets {
		if b != 8 { // 4 pages per bucket x 2 accesses each
			t.Fatalf("bucket %d = %d, want 8", i, b)
		}
	}
}
