package index

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/simd"
	"repro/internal/sortable"
)

// This file implements the squared-space pruning pipeline shared by every
// index's query hot path.
//
// Every candidate probe lower-bounds the query-candidate distance with iSAX
// MINDIST. Computed naively that is expensive: the interleaved key is
// decoded into a freshly allocated Word, each segment re-derives its
// Gaussian breakpoint region, and a math.Sqrt is paid just to compare
// against a pruning bound that could equally well be compared squared. The
// pipeline removes all of that:
//
//   - A Pruner materializes, once per query, a lookup table
//     tab[segment<<bits|symbol] -> pre-scaled squared per-segment MINDIST
//     contribution, for each cardinality in use. A candidate's squared
//     lower bound is then Segments array lookups summed — no Region calls,
//     no Word allocation (symbols decode straight out of the interleaved
//     key bits on the stack), and no sqrt (collectors compare squared
//     bounds; true distances materialize only in Results()).
//
//   - A SearchCtx bundles the Pruner with per-worker Scratch states
//     (raw-series decode buffer, candidate-ordering scratch) and is
//     recycled through a sync.Pool, so concurrent searches allocate nothing
//     per candidate probe. Pages themselves arrive as pinned borrows from
//     the storage.PageReader (zero-copy), not as scratch copies.
//
// # Query-context lifecycle
//
// A search entry point acquires one context per query and releases it when
// the query completes:
//
//	ctx := index.AcquireCtx(q, cfg)
//	defer ctx.Release()
//
// The context's Pruner is read-only after AcquireCtx (FillAll may extend it
// with coarser cardinalities before fan-out; ADS+ needs those for its
// per-segment cardinalities) and is therefore safely shared by every worker
// of the query. Scratch states are handed out one per worker slot by
// FanOut; a scratch is exclusive to its slot while a task runs, so its
// buffers need no locking. Scratches must be materialized on the
// coordinating goroutine (Scratches / Scratch0) before workers start.
// Release returns the whole bundle — tables, decode scratch, candidate
// slices — to the pool for the next query; a context must not be used
// after Release.

// Pruner holds the per-query MINDIST lookup tables in squared space. The
// zero value is unusable; tables are populated by Fill (one cardinality) and
// FillAll (every cardinality up to the configured bits). After filling, a
// Pruner is read-only and safe for concurrent use by any number of workers.
type Pruner struct {
	segments  int
	bits      int
	seriesLen int
	paa       []float64
	// tab[b] is the table for cardinality 2^b, flattened as
	// [segment<<b | symbol], each entry the pre-scaled (n/w * d^2) squared
	// contribution of that symbol on that segment.
	tab     [sax.MaxBits + 1][]float64
	filled  [sax.MaxBits + 1]bool
	backing []float64
	// qsyms holds the query's own symbol per segment at the configured
	// cardinality — the argmin of each table row — so EnvelopeSq can clamp
	// into a symbol envelope without scanning the row.
	qsyms []uint8
}

// Fill prepares the pruner for a query with the given PAA under cfg,
// materializing the table for cfg.Bits (the cardinality every sortable key
// carries). Tables for coarser cardinalities are added by FillAll.
func (p *Pruner) Fill(paa []float64, cfg Config) {
	if len(paa) != cfg.Segments {
		panic(fmt.Sprintf("index: PAA has %d segments, config %d", len(paa), cfg.Segments))
	}
	p.segments = cfg.Segments
	p.bits = cfg.Bits
	p.seriesLen = cfg.SeriesLen
	p.paa = append(p.paa[:0], paa...)
	// One backing array holds every level's table: level b starts at
	// w*(2^b - 2) and spans w<<b entries.
	total := cfg.Segments * (2<<cfg.Bits - 2)
	if cap(p.backing) < total {
		p.backing = make([]float64, total)
	}
	off := 0
	for b := 1; b <= cfg.Bits; b++ {
		size := cfg.Segments << b
		p.tab[b] = p.backing[off : off+size]
		p.filled[b] = false
		off += size
	}
	for b := cfg.Bits + 1; b <= sax.MaxBits; b++ {
		p.tab[b] = nil
		p.filled[b] = false
	}
	p.fillLevel(cfg.Bits)
	// The query's own symbols at full cardinality index each table row's
	// zero region; EnvelopeSq clamps them into a unit's symbol envelope.
	if cap(p.qsyms) < cfg.Segments {
		p.qsyms = make([]uint8, cfg.Segments)
	}
	p.qsyms = p.qsyms[:cfg.Segments]
	card := 1 << cfg.Bits
	for seg, v := range p.paa {
		p.qsyms[seg] = sax.Symbol(v, card)
	}
}

// FillAll materializes the tables for every cardinality 1..Bits. Indexes
// with per-segment cardinalities (ADS+) need all of them; key-probing
// indexes only ever touch the top level, which Fill already built. FillAll
// must run on the coordinating goroutine before workers share the pruner.
func (p *Pruner) FillAll() {
	for b := 1; b <= p.bits; b++ {
		if !p.filled[b] {
			p.fillLevel(b)
		}
	}
}

// fillLevel computes level b's table: for each segment's PAA value and each
// symbol at cardinality 2^b, the squared distance from the value to the
// symbol's breakpoint region, pre-scaled by seriesLen/segments so summing
// entries directly yields the squared MINDIST.
func (p *Pruner) fillLevel(b int) {
	card := 1 << b
	bp := sax.Breakpoints(card)
	scale := float64(p.seriesLen) / float64(p.segments)
	t := p.tab[b]
	for seg, v := range p.paa {
		row := t[seg<<b : seg<<b+card]
		for sym := 0; sym < card; sym++ {
			var d float64
			if sym > 0 && v < bp[sym-1] {
				d = bp[sym-1] - v
			} else if sym < card-1 && v > bp[sym] {
				d = v - bp[sym]
			}
			row[sym] = scale * d * d
		}
	}
	p.filled[b] = true
}

// Bits returns the cardinality bits the pruner was filled for.
func (p *Pruner) Bits() int { return p.bits }

// MinDistSqKey returns the squared iSAX lower bound between the query and
// any series summarized by the interleaved key k: no series with this key
// can be closer than the square root of the returned value. Symbols are
// decoded from the key's bit rounds into a stack array of table indexes
// (row s starts at s<<bits), then summed by the simd table kernel — no
// allocation, no trigonometric or square-root work, and data-level
// parallelism on the lookups when an accelerated kernel set is active.
func (p *Pruner) MinDistSqKey(k sortable.Key) float64 {
	var idx [sortable.MaxSegments]int32
	w := p.segments
	// Seeding idx[s] with the segment number makes the bit rounds deposit
	// the symbol below it: after p.bits shifts each entry is exactly
	// s<<bits | symbol, the flattened table index, with no fix-up pass.
	for s := 0; s < w; s++ {
		idx[s] = int32(s)
	}
	pos := 0
	for r := 0; r < p.bits; r++ {
		for s := 0; s < w; s++ {
			var bit int32
			if pos < 64 {
				bit = int32(k.Hi >> uint(63-pos) & 1)
			} else {
				bit = int32(k.Lo >> uint(127-pos) & 1)
			}
			idx[s] = idx[s]<<1 | bit
			pos++
		}
	}
	return simd.TableSum(p.tab[p.bits], idx[:w])
}

// EnvelopeSq returns the squared iSAX lower bound between the query and
// every series whose per-segment symbols lie inside the envelope
// [minSym[s], maxSym[s]]: no series in the envelope can be closer than the
// square root of the returned value. Because each table row is unimodal
// with its zero region at the query's own symbol, the row minimum over an
// interval of symbols is attained at the query symbol clamped into the
// interval — a single lookup per segment. A shape mismatch returns 0 (no
// bound), so a stale or foreign envelope can only cost work, never answers.
func (p *Pruner) EnvelopeSq(minSym, maxSym []uint8) float64 {
	if len(minSym) != p.segments || len(maxSym) != p.segments {
		return 0
	}
	t := p.tab[p.bits]
	acc := 0.0
	for s := 0; s < p.segments; s++ {
		q := p.qsyms[s]
		if q < minSym[s] {
			q = minSym[s]
		} else if q > maxSym[s] {
			q = maxSym[s]
		}
		acc += t[s<<uint(p.bits)|int(q)]
	}
	return acc
}

// MinDistSqMixed returns the squared lower bound for a summarization with
// per-segment cardinalities: symbol syms[i] at bits[i] cardinality bits on
// segment i — the shape of ADS+ tree nodes. Requires FillAll; touching an
// unfilled level panics rather than reading a stale pooled table, because a
// silently wrong bound would corrupt results instead of failing.
func (p *Pruner) MinDistSqMixed(syms, bits []uint8) float64 {
	acc := 0.0
	for i, sym := range syms {
		b := int(bits[i])
		if !p.filled[b] {
			panic(fmt.Sprintf("index: MinDistSqMixed at %d bits without FillAll", b))
		}
		acc += p.tab[b][i<<uint(b)|int(sym)]
	}
	return acc
}

// entCand orders an already-decoded candidate entry by squared lower bound.
type entCand struct {
	lbSq float64
	e    record.Entry
}

// offCand orders an encoded candidate (an offset into a page buffer) by
// squared lower bound.
type offCand struct {
	lbSq float64
	off  int32
}

// Scratch is the per-worker mutable state of one query: a raw-series
// decode buffer and candidate-ordering scratch (index pages are read as
// pinned zero-copy borrows, so no page buffer lives here). Exactly one
// task uses a scratch at a time (FanOut hands one to each worker slot), so
// none of it is locked. P points at the query's shared read-only Pruner.
type Scratch struct {
	P      *Pruner
	ser    series.Series
	ecands []entCand
	ocands []offCand
	// Trace aliases the query's trace recorder (nil untraced); workers
	// report candidate tallies through it. Refreshed by Scratches.
	Trace *obs.QueryTrace
}

// SeriesBuf returns the scratch series buffer resized to n points.
func (s *Scratch) SeriesBuf(n int) series.Series {
	if cap(s.ser) < n {
		s.ser = make(series.Series, n)
	}
	return s.ser[:n]
}

// SearchCtx is the pooled per-query search context: the query's pruning
// tables plus one Scratch per worker slot. Acquire with AcquireCtx, release
// with Release. See the lifecycle notes at the top of this file.
type SearchCtx struct {
	P         Pruner
	scratches []*Scratch
	plan      []PlanUnit // inner-level probe plan (runs, partitions, leaf ranges)
	outerPlan []PlanUnit // shard-level probe plan; see OuterPlanUnits
	// Trace is the query's trace recorder, copied from Query.Trace at
	// acquisition (nil untraced) and cleared on Release so pooled
	// contexts never leak a trace across queries.
	Trace *obs.QueryTrace
}

var ctxPool = sync.Pool{New: func() any { return new(SearchCtx) }}

// AcquireCtx returns a search context from the pool with pruning tables
// filled for q under cfg. The caller must Release it when the query
// completes.
func AcquireCtx(q Query, cfg Config) *SearchCtx {
	ctx := ctxPool.Get().(*SearchCtx)
	ctx.P.Fill(q.PAA, cfg)
	ctx.Trace = q.Trace
	return ctx
}

// Release returns the context and all its scratch buffers to the pool. The
// context must not be used afterwards.
func (c *SearchCtx) Release() {
	c.Trace = nil
	ctxPool.Put(c)
}

// Scratches returns scratch states for worker slots 0..n-1, growing the set
// as needed. It must be called on the coordinating goroutine before workers
// start; the returned scratches may then be used concurrently, one per
// slot. Each call refreshes the scratches' trace alias from the context,
// so pooled scratches follow the current query's tracing state.
func (c *SearchCtx) Scratches(n int) []*Scratch {
	for len(c.scratches) < n {
		c.scratches = append(c.scratches, &Scratch{P: &c.P})
	}
	out := c.scratches[:n]
	for _, sc := range out {
		sc.Trace = c.Trace
	}
	return out
}

// Scratch0 returns the serial path's scratch (worker slot 0).
func (c *SearchCtx) Scratch0() *Scratch { return c.Scratches(1)[0] }

// rawDistSq fetches series id from raw and returns its early-abandoning
// squared distance to the query, decoding into the scratch buffer when the
// store supports it so the fetch allocates nothing.
func rawDistSq(q Query, id int64, raw series.RawStore, limitSq float64, sc *Scratch) (float64, error) {
	if raw == nil {
		return 0, fmt.Errorf("index: non-materialized entry %d but no raw store", id)
	}
	var s series.Series
	var err error
	if g, ok := raw.(series.IntoGetter); ok && sc != nil {
		s, err = g.GetInto(int(id), sc.SeriesBuf(len(q.Norm)))
	} else {
		s, err = raw.Get(int(id))
	}
	if err != nil {
		return 0, err
	}
	return q.Norm.SqDistEarlyAbandon(s, limitSq), nil
}

// TrueDistSq computes the squared distance between a prepared query and a
// candidate entry, using the inline payload when materialized or fetching
// from raw otherwise, abandoning accumulation beyond limitSq. The
// payload/raw series must already be z-normalized. Raw stores must be safe
// for concurrent fetches: workers verify candidates concurrently.
func TrueDistSq(q Query, e record.Entry, raw series.RawStore, limitSq float64, sc *Scratch) (float64, error) {
	if e.Payload != nil {
		return q.Norm.SqDistEarlyAbandon(e.Payload, limitSq), nil
	}
	return rawDistSq(q, e.ID, raw, limitSq, sc)
}

// EvalCandidates evaluates a batch of already-in-memory candidate entries
// against the collector in ascending lower-bound order: the most promising
// candidate is verified first, collapsing the pruning bound so the rest are
// skipped without paying their (possibly random) raw fetches. Bounds are
// compared in squared space throughout. It returns the number of candidates
// considered.
func EvalCandidates(q Query, entries []record.Entry, raw series.RawStore, col *Collector, sc *Scratch) (int, error) {
	cands := sc.ecands[:0]
	for _, e := range entries {
		cands = append(cands, entCand{e: e, lbSq: sc.P.MinDistSqKey(e.Key)})
	}
	slices.SortFunc(cands, func(a, b entCand) int { return cmp.Compare(a.lbSq, b.lbSq) })
	// Keep the grown capacity for the next batch, but zero the contents:
	// entries can carry payload slices, which must not stay reachable from
	// the pooled scratch after the query ends.
	defer func() {
		clear(cands)
		sc.ecands = cands[:0]
	}()
	traced := sc.Trace != nil
	var ver, ab, pr int64
	for i, c := range cands {
		if col.SkipSq(c.lbSq) {
			if traced {
				pr += int64(len(cands) - i)
			}
			break // all remaining candidates have larger lower bounds
		}
		limitSq := col.WorstSq()
		dSq, err := TrueDistSq(q, c.e, raw, limitSq, sc)
		if err != nil {
			return len(cands), err
		}
		if traced {
			ver++
			if dSq > limitSq {
				ab++
			}
		}
		col.AddSq(c.e.ID, c.e.TS, dSq)
	}
	if traced {
		sc.Trace.NoteCands(int64(len(cands)), ver, ab, pr)
	}
	return len(cands), nil
}

// EvalRangeCandidates verifies in-memory candidates against a range
// collector, pruning table-computed lower bounds by the epsilon bound.
func EvalRangeCandidates(q Query, entries []record.Entry, raw series.RawStore, col *RangeCollector, sc *Scratch) error {
	traced := sc.Trace != nil
	var ver, ab, pr int64
	for _, e := range entries {
		if col.PruneSq(sc.P.MinDistSqKey(e.Key)) {
			if traced {
				pr++
			}
			continue
		}
		dSq, err := TrueDistSq(q, e, raw, col.BoundSq(), sc)
		if err != nil {
			return err
		}
		if traced {
			ver++
			if dSq > col.BoundSq() {
				ab++
			}
		}
		col.AddSq(e.ID, e.TS, dSq)
	}
	if traced {
		sc.Trace.NoteCands(int64(len(entries)), ver, ab, pr)
	}
	return nil
}

// EvalEncoded evaluates n records encoded back-to-back in page (codec.Size()
// bytes each) against the collector, straight from the page bytes: the
// window filter and the squared lower bound are computed from the encoded
// header alone, and surviving candidates verify in ascending lower-bound
// order with early-abandoning squared distances accumulated directly from
// the encoded payload (materialized) or a scratch-buffer raw fetch. No
// record is ever decoded into an Entry, so a probe allocates nothing. It
// returns the number of in-window candidates seen.
func EvalEncoded(q Query, page []byte, n int, codec record.Codec, raw series.RawStore, col *Collector, sc *Scratch) (int, error) {
	recSize := codec.Size()
	cands := sc.ocands[:0]
	count := 0
	traced := sc.Trace != nil
	var ver, ab, pr int64
	for i := 0; i < n; i++ {
		rec := page[i*recSize : (i+1)*recSize]
		if !q.InWindow(record.DecodeTS(rec)) {
			continue
		}
		count++
		lbSq := sc.P.MinDistSqKey(record.DecodeKeyOnly(rec))
		if col.SkipSq(lbSq) {
			if traced {
				pr++
			}
			continue // cheap reject before even locating the payload
		}
		cands = append(cands, offCand{lbSq: lbSq, off: int32(i * recSize)})
	}
	slices.SortFunc(cands, func(a, b offCand) int { return cmp.Compare(a.lbSq, b.lbSq) })
	sc.ocands = cands
	for ci, c := range cands {
		if col.SkipSq(c.lbSq) {
			if traced {
				pr += int64(len(cands) - ci)
			}
			break
		}
		rec := page[c.off : int(c.off)+recSize]
		limitSq := col.WorstSq()
		var dSq float64
		if codec.Materialized {
			dSq = q.Norm.SqDistEncodedEarlyAbandon(codec.PayloadBytes(rec), limitSq)
		} else {
			var err error
			dSq, err = rawDistSq(q, record.DecodeID(rec), raw, limitSq, sc)
			if err != nil {
				return count, err
			}
		}
		if traced {
			ver++
			if dSq > limitSq {
				ab++
			}
		}
		col.AddSq(record.DecodeID(rec), record.DecodeTS(rec), dSq)
	}
	if traced {
		sc.Trace.NoteCands(int64(count), ver, ab, pr)
	}
	return count, nil
}

// EvalEncodedPacked is EvalEncoded for a packed (compressed) page: the
// column decoders are fused into the probe loop, so timestamps and keys
// unpack straight into the window filter and the MINDIST table sum, and
// surviving candidates verify with the same early-abandoning kernels over
// the page's verbatim payload bytes. The view is a stack value and candidate
// offsets reuse the scratch slice, so a packed probe allocates nothing —
// results are byte-identical to decompressing the page and running
// EvalEncoded. It returns the number of in-window candidates seen.
func EvalEncodedPacked(q Query, page []byte, codec record.Codec, raw series.RawStore, col *Collector, sc *Scratch) (int, error) {
	v, err := codec.ViewPacked(page)
	if err != nil {
		return 0, err
	}
	n := v.Count()
	cands := sc.ocands[:0]
	count := 0
	traced := sc.Trace != nil
	var ver, ab, pr int64
	for i := 0; i < n; i++ {
		if !q.InWindow(v.TS(i)) {
			continue
		}
		count++
		lbSq := sc.P.MinDistSqKey(v.Key(i))
		if col.SkipSq(lbSq) {
			if traced {
				pr++
			}
			continue
		}
		cands = append(cands, offCand{lbSq: lbSq, off: int32(i)})
	}
	slices.SortFunc(cands, func(a, b offCand) int { return cmp.Compare(a.lbSq, b.lbSq) })
	sc.ocands = cands
	for ci, c := range cands {
		if col.SkipSq(c.lbSq) {
			if traced {
				pr += int64(len(cands) - ci)
			}
			break
		}
		i := int(c.off)
		limitSq := col.WorstSq()
		var dSq float64
		if codec.Materialized {
			dSq = q.Norm.SqDistEncodedEarlyAbandon(v.PayloadBytes(i), limitSq)
		} else {
			var err error
			dSq, err = rawDistSq(q, v.ID(i), raw, limitSq, sc)
			if err != nil {
				return count, err
			}
		}
		if traced {
			ver++
			if dSq > limitSq {
				ab++
			}
		}
		col.AddSq(v.ID(i), v.TS(i), dSq)
	}
	if traced {
		sc.Trace.NoteCands(int64(count), ver, ab, pr)
	}
	return count, nil
}

// EvalEncodedPackedRange is EvalEncodedRange for a packed page: static
// epsilon bound, no candidate ordering, fused column decode.
func EvalEncodedPackedRange(q Query, page []byte, codec record.Codec, raw series.RawStore, col *RangeCollector, sc *Scratch) error {
	v, err := codec.ViewPacked(page)
	if err != nil {
		return err
	}
	n := v.Count()
	traced := sc.Trace != nil
	var seen, ver, ab, pr int64
	for i := 0; i < n; i++ {
		if !q.InWindow(v.TS(i)) {
			continue
		}
		if traced {
			seen++
		}
		if col.PruneSq(sc.P.MinDistSqKey(v.Key(i))) {
			if traced {
				pr++
			}
			continue
		}
		var dSq float64
		if codec.Materialized {
			dSq = q.Norm.SqDistEncodedEarlyAbandon(v.PayloadBytes(i), col.BoundSq())
		} else {
			var err error
			dSq, err = rawDistSq(q, v.ID(i), raw, col.BoundSq(), sc)
			if err != nil {
				return err
			}
		}
		if traced {
			ver++
			if dSq > col.BoundSq() {
				ab++
			}
		}
		col.AddSq(v.ID(i), v.TS(i), dSq)
	}
	if traced {
		sc.Trace.NoteCands(seen, ver, ab, pr)
	}
	return nil
}

// EvalEncodedRange is EvalEncoded against a range collector: the epsilon
// bound is static, so candidates need no ordering and every in-window,
// unpruned record verifies directly from the encoded bytes.
func EvalEncodedRange(q Query, page []byte, n int, codec record.Codec, raw series.RawStore, col *RangeCollector, sc *Scratch) error {
	recSize := codec.Size()
	traced := sc.Trace != nil
	var seen, ver, ab, pr int64
	for i := 0; i < n; i++ {
		rec := page[i*recSize : (i+1)*recSize]
		if !q.InWindow(record.DecodeTS(rec)) {
			continue
		}
		if traced {
			seen++
		}
		if col.PruneSq(sc.P.MinDistSqKey(record.DecodeKeyOnly(rec))) {
			if traced {
				pr++
			}
			continue
		}
		var dSq float64
		if codec.Materialized {
			dSq = q.Norm.SqDistEncodedEarlyAbandon(codec.PayloadBytes(rec), col.BoundSq())
		} else {
			var err error
			dSq, err = rawDistSq(q, record.DecodeID(rec), raw, col.BoundSq(), sc)
			if err != nil {
				return err
			}
		}
		if traced {
			ver++
			if dSq > col.BoundSq() {
				ab++
			}
		}
		col.AddSq(record.DecodeID(rec), record.DecodeTS(rec), dSq)
	}
	if traced {
		sc.Trace.NoteCands(seen, ver, ab, pr)
	}
	return nil
}
