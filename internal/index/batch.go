package index

import "repro/internal/parallel"

// This file implements batched query execution: many queries pipelined
// through pooled SearchCtx scratch, parallelized across queries rather than
// within one. A batch executor hands each worker slot one context and one
// query at a time; the slot's context is refilled per query (table fill is
// the only per-query cost) while its page buffers, decode scratch, and
// candidate slices persist across the whole batch — no per-query
// re-allocation. Each query's own scan runs serially (SerialPool), so batch
// throughput comes from inter-query parallelism and per-query results stay
// byte-identical to a standalone Search of the same query.

// SerialPool is the shared one-worker pool used by ctx-managed search
// variants: a batch executor owns the parallelism across queries, so each
// individual query's scan stays serial. Pools are immutable and goroutine
// safe, so one shared instance serves every index.
var SerialPool = parallel.New(1)

// CtxSearcher is implemented by indexes whose exact search can run with a
// caller-managed context: ctx must already be filled for q (Refill), and the
// scan runs serially on the calling goroutine. Batch executors and sharded
// probes use it to share one table fill across shards and to recycle
// scratch across queries.
type CtxSearcher interface {
	ExactSearchCtx(q Query, k int, ctx *SearchCtx) ([]Result, error)
}

// CollSearcher is implemented by indexes whose exact search can hand back
// its collector instead of rendered results: the collector still holds the
// exact accumulated squared distances, which a sharded merge folds together
// without the (lossy in the last ulp) true-distance round trip. ctx must
// already be filled for q; the scan runs serially, like ExactSearchCtx.
type CollSearcher interface {
	ExactSearchColl(q Query, k int, ctx *SearchCtx) (*Collector, error)
}

// BatchSearcher is implemented by indexes with a batched exact-search path:
// out[i] is byte-identical to ExactSearch(qs[i], k), with per-query scratch
// pooled across the batch.
type BatchSearcher interface {
	ExactSearchBatch(qs []Query, k int) ([][]Result, error)
}

// Refill re-fills the context's pruning tables for a new query, keeping
// every scratch buffer. Batch executors call it between queries instead of
// releasing and re-acquiring the context.
func (c *SearchCtx) Refill(q Query, cfg Config) { c.P.Fill(q.PAA, cfg) }

// Batch runs one exact search per query over the pool. Each worker slot
// owns one SearchCtx for the whole batch: the slot refills its tables per
// query and reuses its scratch buffers across every query it executes.
// out[i] is whatever search returns for qs[i]; because search receives a
// filled context and runs each query identically to the standalone path,
// batching never changes answers — only wall-clock time. On error the
// lowest-indexed query's error is reported (parallel.Pool's deterministic
// error contract) and the partial outputs are discarded.
func Batch(pool *parallel.Pool, cfg Config, qs []Query, search func(q Query, ctx *SearchCtx) ([]Result, error)) ([][]Result, error) {
	return BatchPlanned(nil, pool, cfg, qs, search)
}

// BatchPlanned is Batch with per-query table fills routed through a
// planner's plan cache, so worker slots share cached tables across repeated
// query shapes. A nil planner (or one without a cache) fills directly —
// identical to Batch.
func BatchPlanned(pl *Planner, pool *parallel.Pool, cfg Config, qs []Query, search func(q Query, ctx *SearchCtx) ([]Result, error)) ([][]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	out := make([][]Result, len(qs))
	w := pool.WorkersFor(len(qs))
	ctxs := make([]*SearchCtx, w)
	for i := range ctxs {
		ctxs[i] = ctxPool.Get().(*SearchCtx)
	}
	defer func() {
		for _, c := range ctxs {
			c.Release()
		}
	}()
	err := pool.ForEach(len(qs), func(worker, i int) error {
		ctx := ctxs[worker]
		pl.Refill(ctx, qs[i], cfg)
		rs, err := search(qs[i], ctx)
		if err != nil {
			return err
		}
		out[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
