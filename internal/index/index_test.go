package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/record"
	"repro/internal/series"
)

func testConfig() Config {
	return Config{SeriesLen: 128, Segments: 16, Bits: 8}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SeriesLen: 0, Segments: 8, Bits: 8},
		{SeriesLen: 128, Segments: 0, Bits: 8},
		{SeriesLen: 128, Segments: 17, Bits: 8},
		{SeriesLen: 128, Segments: 8, Bits: 0},
		{SeriesLen: 128, Segments: 8, Bits: 9},
		{SeriesLen: 4, Segments: 8, Bits: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestConfigCodec(t *testing.T) {
	c := Config{SeriesLen: 64, Segments: 8, Bits: 4, Materialized: true}
	codec := c.Codec()
	if !codec.Materialized || codec.SeriesLen != 64 {
		t.Fatal("codec config mismatch")
	}
}

func TestSummarizeDeterministic(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(1))
	s := gen.RandomWalk(rng, cfg.SeriesLen)
	k1, z1 := cfg.Summarize(s)
	k2, z2 := cfg.Summarize(s)
	if k1 != k2 {
		t.Fatal("summarize not deterministic")
	}
	if math.Abs(z1.Mean()) > 1e-9 || math.Abs(z2.Std()-1) > 1e-9 {
		t.Fatal("summarize must z-normalize")
	}
}

func TestNewQueryMatchesSummarize(t *testing.T) {
	cfg := testConfig()
	s := gen.RandomWalk(rand.New(rand.NewSource(2)), cfg.SeriesLen)
	q := NewQuery(s, cfg)
	k, _ := cfg.Summarize(s)
	if q.Key != k {
		t.Fatal("query key differs from summarize key")
	}
	if len(q.PAA) != cfg.Segments {
		t.Fatalf("PAA segments = %d", len(q.PAA))
	}
}

func TestMinDistKeyLowerBounds(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := gen.RandomWalk(rng, cfg.SeriesLen)
		b := gen.RandomWalk(rng, cfg.SeriesLen)
		q := NewQuery(a, cfg)
		kb, zb := cfg.Summarize(b)
		trueDist := math.Sqrt(q.Norm.SqDist(zb))
		lb := cfg.MinDistKey(q.PAA, kb)
		if lb > trueDist+1e-9 {
			t.Fatalf("trial %d: lower bound %v > true %v", trial, lb, trueDist)
		}
	}
}

func TestQueryWindow(t *testing.T) {
	q := Query{}
	if !q.InWindow(-100) || !q.InWindow(1<<40) {
		t.Fatal("unwindowed query must accept any TS")
	}
	w := q.WithWindow(10, 20)
	if w.InWindow(9) || !w.InWindow(10) || !w.InWindow(20) || w.InWindow(21) {
		t.Fatal("window bounds wrong")
	}
	if q.Windowed {
		t.Fatal("WithWindow must not mutate the original")
	}
}

func TestCollectorBasics(t *testing.T) {
	c := NewCollector(3)
	if c.Full() {
		t.Fatal("empty collector reported full")
	}
	if !math.IsInf(c.Worst(), 1) {
		t.Fatal("unfilled collector Worst must be +Inf")
	}
	for i, d := range []float64{5, 3, 8, 1, 9, 2} {
		c.Add(Result{ID: int64(i), Dist: d})
	}
	res := c.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	want := []float64{1, 2, 3}
	for i, r := range res {
		if r.Dist != want[i] {
			t.Fatalf("results = %v", res)
		}
	}
	if c.Worst() != 3 {
		t.Fatalf("Worst = %v, want 3", c.Worst())
	}
}

func TestCollectorDeduplicates(t *testing.T) {
	c := NewCollector(5)
	c.Add(Result{ID: 1, Dist: 2})
	if c.Add(Result{ID: 1, Dist: 1}) {
		t.Fatal("duplicate ID accepted")
	}
	if len(c.Results()) != 1 {
		t.Fatal("duplicate stored")
	}
}

func TestCollectorEvictionMaintainsSeen(t *testing.T) {
	c := NewCollector(2)
	c.Add(Result{ID: 1, Dist: 10})
	c.Add(Result{ID: 2, Dist: 20})
	// Evict ID 2 (worst) with a better one.
	if !c.Add(Result{ID: 3, Dist: 5}) {
		t.Fatal("better candidate rejected")
	}
	// ID 2 was evicted, so it may be re-offered.
	if !c.Add(Result{ID: 2, Dist: 1}) {
		t.Fatal("evicted ID should be re-admissible")
	}
	res := c.Results()
	if res[0].ID != 2 || res[1].ID != 3 {
		t.Fatalf("results = %v", res)
	}
}

func TestCollectorKOne(t *testing.T) {
	c := NewCollector(0) // clamps to 1
	c.Add(Result{ID: 1, Dist: 5})
	c.Add(Result{ID: 2, Dist: 3})
	res := c.Results()
	if len(res) != 1 || res[0].ID != 2 {
		t.Fatalf("results = %v", res)
	}
}

func TestCollectorMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		c := NewCollector(k)
		all := make([]Result, n)
		for i := range all {
			all[i] = Result{ID: int64(i), Dist: rng.Float64() * 100}
			c.Add(all[i])
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
		want := all[:min(k, n)]
		got := c.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTrueDistMaterialized(t *testing.T) {
	cfg := Config{SeriesLen: 8, Segments: 4, Bits: 2, Materialized: true}
	s := series.Series{1, 2, 3, 4, 5, 6, 7, 8}
	q := NewQuery(s, cfg)
	_, z := cfg.Summarize(s)
	e := record.Entry{ID: 0, Payload: z}
	d, err := TrueDist(q, e, nil, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestTrueDistNonMaterializedNeedsRaw(t *testing.T) {
	cfg := Config{SeriesLen: 8, Segments: 4, Bits: 2}
	q := NewQuery(series.Series{1, 2, 3, 4, 5, 6, 7, 8}, cfg)
	if _, err := TrueDist(q, record.Entry{ID: 0}, nil, math.Inf(1)); err == nil {
		t.Fatal("expected error without raw store")
	}
	// With a raw store holding z-normalized series.
	ds := series.NewDataset(8)
	_, z := cfg.Summarize(series.Series{1, 2, 3, 4, 5, 6, 7, 8})
	ds.Append(z)
	d, err := TrueDist(q, record.Entry{ID: 0}, ds, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestPropertyCollectorNeverExceedsK(t *testing.T) {
	f := func(dists []float64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		c := NewCollector(k)
		for i, d := range dists {
			if math.IsNaN(d) {
				continue
			}
			c.Add(Result{ID: int64(i), Dist: math.Abs(d)})
		}
		res := c.Results()
		if len(res) > k {
			return false
		}
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
