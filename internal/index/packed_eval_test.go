package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/record"
	"repro/internal/series"
)

// buildEvalFixture summarizes n random series into key-sorted entries plus
// both page encodings of the same entry sequence: the fixed-size layout
// EvalEncoded walks and a packed page EvalEncodedPacked decodes.
func buildEvalFixture(t *testing.T, rng *rand.Rand, cfg Config, n, pageSize int) (*series.Dataset, []record.Entry, []byte, []byte) {
	t.Helper()
	codec := cfg.Codec()
	ds := series.NewDataset(cfg.SeriesLen)
	entries := make([]record.Entry, 0, n)
	zs := make([]series.Series, 0, n)
	for i := 0; i < n; i++ {
		s := make(series.Series, cfg.SeriesLen)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		key, z := cfg.Summarize(s)
		e := record.Entry{Key: key, ID: int64(i), TS: int64(i % 7)}
		if cfg.Materialized {
			e.Payload = z
		}
		entries = append(entries, e)
		zs = append(zs, z)
	}
	// The raw store is ID-addressed; append in ID order before sorting.
	for _, z := range zs {
		if _, err := ds.Append(z); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Less(entries[b]) })

	var fixed []byte
	for _, e := range entries {
		var err error
		if fixed, err = codec.Append(fixed, e); err != nil {
			t.Fatal(err)
		}
	}
	b, err := record.NewPageBuilder(codec, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ok, err := b.TryAdd(e)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("fixture of %d entries does not fit one %d-byte packed page", n, pageSize)
		}
	}
	packed := make([]byte, pageSize)
	if _, err := b.Encode(packed); err != nil {
		t.Fatal(err)
	}
	return ds, entries, fixed, packed
}

// TestEvalEncodedPackedMatchesFixed is the compressed-probe equivalence
// property: the packed-page evaluator must produce byte-identical collector
// contents (and identical window-survivor counts) to the fixed-layout one,
// materialized or not, windowed or not.
func TestEvalEncodedPackedMatchesFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, materialized := range []bool{false, true} {
		cfg := Config{SeriesLen: 32, Segments: 8, Bits: 4, Materialized: materialized}
		codec := cfg.Codec()
		ds, entries, fixed, packed := buildEvalFixture(t, rng, cfg, 48, 32768)

		for trial := 0; trial < 20; trial++ {
			qs := make(series.Series, cfg.SeriesLen)
			for j := range qs {
				qs[j] = rng.NormFloat64()
			}
			q := NewQuery(qs, cfg)
			if trial%2 == 1 {
				q.Windowed, q.MinTS, q.MaxTS = true, 2, 5
			}

			ctx1 := AcquireCtx(q, cfg)
			colA := NewCollector(5)
			nA, err := EvalEncoded(q, fixed, len(entries), codec, ds, colA, ctx1.Scratch0())
			if err != nil {
				t.Fatal(err)
			}
			ctx1.Release()

			ctx2 := AcquireCtx(q, cfg)
			colB := NewCollector(5)
			nB, err := EvalEncodedPacked(q, packed, codec, ds, colB, ctx2.Scratch0())
			if err != nil {
				t.Fatal(err)
			}
			ctx2.Release()

			if nA != nB {
				t.Fatalf("materialized=%v trial %d: %d vs %d window survivors", materialized, trial, nA, nB)
			}
			ra, rb := colA.Results(), colB.Results()
			if len(ra) != len(rb) {
				t.Fatalf("materialized=%v trial %d: %d vs %d results", materialized, trial, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("materialized=%v trial %d result %d: %+v vs %+v", materialized, trial, i, ra[i], rb[i])
				}
			}
		}
	}
}

// TestEvalEncodedPackedRangeMatchesFixed mirrors the k-NN equivalence for
// the epsilon-range evaluator.
func TestEvalEncodedPackedRangeMatchesFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, materialized := range []bool{false, true} {
		cfg := Config{SeriesLen: 32, Segments: 8, Bits: 4, Materialized: materialized}
		codec := cfg.Codec()
		ds, entries, fixed, packed := buildEvalFixture(t, rng, cfg, 48, 32768)

		qs := make(series.Series, cfg.SeriesLen)
		for j := range qs {
			qs[j] = rng.NormFloat64()
		}
		q := NewQuery(qs, cfg)
		for _, eps := range []float64{0.1, 5, 50} {
			ctx1 := AcquireCtx(q, cfg)
			colA := NewRangeCollector(eps)
			if err := EvalEncodedRange(q, fixed, len(entries), codec, ds, colA, ctx1.Scratch0()); err != nil {
				t.Fatal(err)
			}
			ctx1.Release()

			ctx2 := AcquireCtx(q, cfg)
			colB := NewRangeCollector(eps)
			if err := EvalEncodedPackedRange(q, packed, codec, ds, colB, ctx2.Scratch0()); err != nil {
				t.Fatal(err)
			}
			ctx2.Release()

			ra, rb := colA.Results(), colB.Results()
			if len(ra) != len(rb) {
				t.Fatalf("materialized=%v eps=%v: %d vs %d results", materialized, eps, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("materialized=%v eps=%v result %d: %+v vs %+v", materialized, eps, i, ra[i], rb[i])
				}
			}
		}
	}
}

// TestEvalEncodedPackedDoesNotAllocate pins the packed probe path's
// zero-allocation property: decompression is fused into the scan, with the
// candidate buffer drawn from scratch.
func TestEvalEncodedPackedDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	rng := rand.New(rand.NewSource(23))
	cfg := Config{SeriesLen: 32, Segments: 8, Bits: 4, Materialized: true}
	codec := cfg.Codec()
	ds, _, _, packed := buildEvalFixture(t, rng, cfg, 24, 16384)
	qs := make(series.Series, cfg.SeriesLen)
	for j := range qs {
		qs[j] = rng.NormFloat64()
	}
	q := NewQuery(qs, cfg)
	ctx := AcquireCtx(q, cfg)
	defer ctx.Release()
	sc := ctx.Scratch0()
	col := NewCollector(3)
	// Warm the scratch candidate buffer to its high-water mark.
	if _, err := EvalEncodedPacked(q, packed, codec, ds, col, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := EvalEncodedPacked(q, packed, codec, ds, col, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed probe allocated %v times per run, want 0", allocs)
	}
}
