//go:build !race

package index

// raceEnabled reports whether the race detector is active; allocation-count
// assertions are skipped under instrumentation.
const raceEnabled = false
