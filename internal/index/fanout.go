package index

import "repro/internal/parallel"

// FanOut is the one fan-out/merge scaffold every parallel search path uses:
// n independent scan tasks execute over the pool, collecting into col. With
// a single usable worker the tasks run serially, in order, directly into
// col with one scratch buffer — the exact serial path, sharing col's
// evolving pruning bound across tasks. Otherwise each worker slot scans
// into clone(col) with a private bufSize-byte buffer, and the per-slot
// collectors merge back into col. Because both Collector and
// RangeCollector are order-independent, the two routes return identical
// results; the parallel one merely evaluates a few extra candidates whose
// distances lose at the merge.
func FanOut[C any](pool *parallel.Pool, n int, col C, clone func(C) C, merge func(dst, src C), bufSize int, scan func(i int, col C, buf []byte) error) error {
	w := pool.WorkersFor(n)
	if w <= 1 {
		buf := make([]byte, bufSize)
		for i := 0; i < n; i++ {
			if err := scan(i, col, buf); err != nil {
				return err
			}
		}
		return nil
	}
	cols := make([]C, w)
	bufs := make([][]byte, w)
	for i := 0; i < w; i++ {
		cols[i] = clone(col)
		bufs[i] = make([]byte, bufSize)
	}
	err := pool.ForEach(n, func(worker, i int) error {
		return scan(i, cols[worker], bufs[worker])
	})
	if err != nil {
		return err
	}
	for _, c := range cols {
		merge(col, c)
	}
	return nil
}
