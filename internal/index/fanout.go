package index

import "repro/internal/parallel"

// FanOut is the one fan-out/merge scaffold every parallel search path uses:
// n independent scan tasks execute over the pool, collecting into col. With
// a single usable worker the tasks run serially, in order, directly into
// col with the context's slot-0 scratch — the exact serial path, sharing
// col's evolving pruning bound across tasks. Otherwise each worker slot
// scans into clone(col) with its own per-slot Scratch from ctx, and the
// per-slot collectors merge back into col. Because both Collector and
// RangeCollector are order-independent, the two routes return identical
// results; the parallel one merely evaluates a few extra candidates whose
// distances lose at the merge.
//
// For Collector fan-outs pass (*Collector).PooledClone and
// (*Collector).MergeRelease so the per-worker collectors recycle their
// storage through the collector pool instead of churning fresh heaps and
// seen maps every query.
func FanOut[C any](pool *parallel.Pool, n int, ctx *SearchCtx, col C, clone func(C) C, merge func(dst, src C), scan func(i int, col C, sc *Scratch) error) error {
	w := pool.WorkersFor(n)
	if w <= 1 {
		sc := ctx.Scratch0()
		for i := 0; i < n; i++ {
			if err := scan(i, col, sc); err != nil {
				return err
			}
		}
		return nil
	}
	scs := ctx.Scratches(w)
	cols := make([]C, w)
	for i := 0; i < w; i++ {
		cols[i] = clone(col)
	}
	err := pool.ForEach(n, func(worker, i int) error {
		return scan(i, cols[worker], scs[worker])
	})
	// Merge even on error: the caller discards col then, but the merge
	// callback is also what releases pooled clones back to their pool.
	for _, c := range cols {
		merge(col, c)
	}
	return err
}
