package index

import (
	"math"
	"testing"
)

func TestRangeCollectorBasics(t *testing.T) {
	c := NewRangeCollector(5.0)
	if c.Bound() != 5.0 {
		t.Fatalf("bound = %v", c.Bound())
	}
	if !c.Add(Result{ID: 1, Dist: 4.9}) {
		t.Fatal("in-range candidate rejected")
	}
	if c.Add(Result{ID: 2, Dist: 5.1}) {
		t.Fatal("out-of-range candidate accepted")
	}
	if c.Add(Result{ID: 1, Dist: 1.0}) {
		t.Fatal("duplicate accepted")
	}
	if !c.Add(Result{ID: 3, Dist: 5.0}) {
		t.Fatal("boundary candidate (== eps) rejected")
	}
	c.Add(Result{ID: 4, Dist: 0.5})
	res := c.Results()
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if res[0].ID != 4 {
		t.Fatalf("closest = %+v", res[0])
	}
}

func TestRangeCollectorEmpty(t *testing.T) {
	c := NewRangeCollector(0)
	if got := c.Results(); len(got) != 0 {
		t.Fatalf("results = %v", got)
	}
	if math.IsNaN(c.Bound()) {
		t.Fatal("bound NaN")
	}
}
