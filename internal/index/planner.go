package index

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sax"
	"repro/internal/zonestat"
)

// This file implements the statistics-driven query planner shared by every
// index: given a zonestat.Synopsis per probe unit (LSM run, stream
// partition, tree leaf range, shard), the planner
//
//   - orders units by their envelope MINDIST lower bound so the collector's
//     pruning bound tightens as early as possible, and
//   - skips any unit whose bound already exceeds the collector's current
//     worst (Collector.SkipSq / RangeCollector.PruneSq).
//
// Both transformations are answer-preserving: the per-unit envelope bound
// is never larger than the per-entry bound the probe itself would have
// pruned with, and the collectors are order-independent (deterministic
// (distance, id) ordering), so planned and unplanned searches return
// byte-identical results. Tests assert this exactly.
//
// A Planner also optionally carries a PlanCache that reuses filled Pruner
// tables across queries with identical PAA under the same Config — the
// dominant cost of starting a query on repeated-shape workloads. All
// methods are nil-receiver safe: a nil *Planner plans (ordering and
// skipping need no state) but has no cache and drops its counters.

// PlanUnit pairs a probe unit's index in the caller's unit list with its
// squared envelope lower bound, for sorting into probe order.
type PlanUnit struct {
	BoundSq float64
	Idx     int
}

// PlanUnits returns a reusable []PlanUnit of length n from the context,
// initialized to the identity probe order with zero bounds, so planning a
// probe order allocates nothing on the warm path. Callers overwrite the
// bounds and sort.
func (c *SearchCtx) PlanUnits(n int) []PlanUnit {
	return planBuf(&c.plan, n)
}

// OuterPlanUnits is PlanUnits from a second, independent buffer. The sharded
// fan-out plans shard probes with the same context it then hands to each
// shard's inner index — whose own run/partition/leaf planning reuses the
// primary buffer. Two buffers keep the nested plans from aliasing.
func (c *SearchCtx) OuterPlanUnits(n int) []PlanUnit {
	return planBuf(&c.outerPlan, n)
}

func planBuf(buf *[]PlanUnit, n int) []PlanUnit {
	if cap(*buf) < n {
		*buf = make([]PlanUnit, n)
	}
	units := (*buf)[:n]
	for i := range units {
		units[i] = PlanUnit{Idx: i}
	}
	return units
}

// SortPlan orders units by ascending (BoundSq, Idx). Unit counts are small
// (runs, partitions, shards), so an insertion sort wins — and unlike
// sort.Slice it allocates nothing, which keeps the warm planned probe path
// at 0 allocs/op.
func SortPlan(units []PlanUnit) {
	for i := 1; i < len(units); i++ {
		u := units[i]
		j := i - 1
		for j >= 0 && (units[j].BoundSq > u.BoundSq ||
			(units[j].BoundSq == u.BoundSq && units[j].Idx > u.Idx)) {
			units[j+1] = units[j]
			j--
		}
		units[j+1] = u
	}
}

// SynopsisBoundSq returns the squared lower bound between the query and
// every entry in the unit summarized by syn. A nil or shape-mismatched
// synopsis yields 0 (no bound: always probe); an empty unit yields +Inf
// (nothing to find: always skippable).
func (p *Pruner) SynopsisBoundSq(syn *zonestat.Synopsis) float64 {
	if syn == nil || syn.Segments != p.segments || syn.Bits != p.bits {
		return 0
	}
	if syn.Count == 0 {
		return math.Inf(1)
	}
	return p.EnvelopeSq(syn.MinSym, syn.MaxSym)
}

// Planner is the per-index planning handle: an enable switch, an optional
// shared PlanCache, and a skip counter. Indexes hold a *Planner and call
// its helpers on the query path; a nil Planner behaves like an enabled
// planner with no cache, so constructors only materialize one when there is
// a cache or counter to carry. One Planner may be shared by many indexes
// (every shard of a Sharded facade shares one, like the buffer-pool cache).
type Planner struct {
	Disabled bool
	Cache    *PlanCache
	skips    atomic.Int64
}

// Enabled reports whether probe ordering and unit skipping should run.
func (pl *Planner) Enabled() bool { return pl == nil || !pl.Disabled }

// NoteSkips records n probe units skipped by their envelope bound.
func (pl *Planner) NoteSkips(n int64) {
	if pl != nil && n != 0 {
		pl.skips.Add(n)
	}
}

// Skips returns the number of probe units skipped so far.
func (pl *Planner) Skips() int64 {
	if pl == nil {
		return 0
	}
	return pl.skips.Load()
}

// CacheStats returns the plan cache's hit and miss counters (zero without a
// cache).
func (pl *Planner) CacheStats() (hits, misses int64) {
	if pl == nil || pl.Cache == nil {
		return 0, 0
	}
	return pl.Cache.hits.Load(), pl.Cache.misses.Load()
}

// AcquireCtx is index.AcquireCtx routed through the planner's cache: on a
// cache hit the pooled context is loaded from the cached tables instead of
// recomputing them.
func (pl *Planner) AcquireCtx(q Query, cfg Config) *SearchCtx {
	ctx := ctxPool.Get().(*SearchCtx)
	pl.Refill(ctx, q, cfg)
	return ctx
}

// Refill fills ctx's pruning tables for q under cfg through the planner's
// cache, for batch paths that reuse one context across queries. It also
// re-binds the context's trace to the query's (so pooled batch contexts
// follow each query's tracing state) and records the plan-cache outcome
// into the trace.
func (pl *Planner) Refill(ctx *SearchCtx, q Query, cfg Config) {
	ctx.Trace = q.Trace
	if pl == nil || pl.Cache == nil {
		ctx.P.Fill(q.PAA, cfg)
		return
	}
	hit := pl.Cache.fill(&ctx.P, q, cfg)
	q.Trace.NotePlanCache(hit)
}

// planKey buckets cache entries by the quantized query signature — the
// query's full-cardinality iSAX word interleaved into a sortable key — plus
// the index Config. Any Config change (bits, segments, series length,
// materialization) changes the key, so reconfigured indexes can never see a
// foreign table. The quantized signature is only the bucket key: a hit
// additionally requires exact element-wise PAA equality, because tables
// from a merely-similar PAA would be invalid bounds.
type planKey struct {
	cfg Config
	sig [2]uint64
}

// planEntry is an immutable snapshot of a filled Pruner. Entries are never
// mutated after insertion, so readers copy from them outside the cache
// lock.
type planEntry struct {
	key     planKey
	paa     []float64
	backing []float64
	filled  [sax.MaxBits + 1]bool
	qsyms   []uint8
	prev    *planEntry
	next    *planEntry
}

// load copies the snapshot into p, reproducing exactly the state
// p.Fill(e.paa, cfg) would have produced (including FillAll extensions
// captured at snapshot time).
func (e *planEntry) load(p *Pruner, cfg Config) {
	p.segments = cfg.Segments
	p.bits = cfg.Bits
	p.seriesLen = cfg.SeriesLen
	p.paa = append(p.paa[:0], e.paa...)
	total := len(e.backing)
	if cap(p.backing) < total {
		p.backing = make([]float64, total)
	}
	copy(p.backing[:total], e.backing)
	off := 0
	for b := 1; b <= cfg.Bits; b++ {
		size := cfg.Segments << b
		p.tab[b] = p.backing[off : off+size]
		p.filled[b] = e.filled[b]
		off += size
	}
	for b := cfg.Bits + 1; b <= sax.MaxBits; b++ {
		p.tab[b] = nil
		p.filled[b] = false
	}
	p.qsyms = append(p.qsyms[:0], e.qsyms...)
}

// PlanCache is a mutexed LRU of filled Pruner snapshots keyed by quantized
// query signature + Config. Repeated query shapes (a dashboard refreshing
// the same patterns, a batch with duplicated queries) skip the
// O(Segments·2^Bits) table build entirely; a hit costs two memcopies into
// the pooled context. Safe for concurrent use by any number of searches.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	m        map[planKey]*planEntry
	head     *planEntry // most recently used
	tail     *planEntry // least recently used
	hits     atomic.Int64
	misses   atomic.Int64
}

// NewPlanCache returns a cache holding at most capacity entries, or nil if
// capacity is not positive (callers treat a nil cache as "no caching").
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{capacity: capacity, m: make(map[planKey]*planEntry, capacity)}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Hits and Misses return the cache's counters.
func (c *PlanCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

func (c *PlanCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

func (c *PlanCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PlanCache) pushFront(e *planEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func paaEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fill populates p for q under cfg, from the cache when an exact-PAA entry
// exists, computing and inserting a snapshot otherwise. It reports whether
// the fill was a cache hit.
func (c *PlanCache) fill(p *Pruner, q Query, cfg Config) bool {
	key := planKey{cfg: cfg, sig: [2]uint64{q.Key.Hi, q.Key.Lo}}
	c.mu.Lock()
	if e, ok := c.m[key]; ok && paaEqual(e.paa, q.PAA) {
		c.unlink(e)
		c.pushFront(e)
		c.mu.Unlock()
		// Entries are immutable after insertion; copying outside the lock
		// keeps the critical section to pointer shuffling.
		e.load(p, cfg)
		c.hits.Add(1)
		return true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	p.Fill(q.PAA, cfg)
	total := cfg.Segments * (2<<cfg.Bits - 2)
	e := &planEntry{
		key:     key,
		paa:     append([]float64(nil), p.paa...),
		backing: append([]float64(nil), p.backing[:total]...),
		filled:  p.filled,
		qsyms:   append([]uint8(nil), p.qsyms...),
	}
	c.mu.Lock()
	if old, ok := c.m[key]; ok {
		// Same bucket filled meanwhile (a racing miss, or a different exact
		// PAA sharing the quantized signature): the newest snapshot wins.
		c.unlink(old)
	}
	c.m[key] = e
	c.pushFront(e)
	for len(c.m) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	c.mu.Unlock()
	return false
}
