package index

import (
	"math/rand"
	"reflect"
	"testing"
)

// The parallel query engine's determinism guarantee rests on the collector
// being a pure function of the candidate set: these tests feed identical
// candidates in shuffled orders and through arbitrary merge topologies and
// demand identical output, including with distance ties at the k boundary.

func randomResults(rng *rand.Rand, n int, distinctDists int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{
			ID: int64(i),
			TS: int64(rng.Intn(100)),
			// Few distinct distances force ties at the k boundary.
			Dist: float64(rng.Intn(distinctDists)),
		}
	}
	return out
}

func TestCollectorOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		results := randomResults(rng, 40, 5)
		k := 1 + rng.Intn(10)
		base := NewCollector(k)
		for _, r := range results {
			base.Add(r)
		}
		want := base.Results()
		for perm := 0; perm < 10; perm++ {
			shuffled := append([]Result(nil), results...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			col := NewCollector(k)
			for _, r := range shuffled {
				col.Add(r)
			}
			if got := col.Results(); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d perm %d: order-dependent results\ngot  %v\nwant %v", trial, perm, got, want)
			}
		}
	}
}

func TestCollectorMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		results := randomResults(rng, 60, 4)
		k := 1 + rng.Intn(8)
		serial := NewCollector(k)
		for _, r := range results {
			serial.Add(r)
		}
		// Split candidates into random shards, collect independently, merge.
		shards := 1 + rng.Intn(5)
		cols := make([]*Collector, shards)
		for i := range cols {
			cols[i] = NewCollector(k)
		}
		for _, r := range results {
			cols[rng.Intn(shards)].Add(r)
		}
		merged := NewCollector(k)
		for _, i := range rng.Perm(shards) { // merge order must not matter
			merged.Merge(cols[i])
		}
		if got, want := merged.Results(), serial.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged != serial\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestCollectorSeededCloneMergeMatchesSerial(t *testing.T) {
	// The engine seeds worker collectors with the approximate phase's
	// results; duplicates must not distort the merged answer.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		results := randomResults(rng, 50, 6)
		k := 1 + rng.Intn(6)
		seedCount := rng.Intn(len(results))
		serial := NewCollector(k)
		for _, r := range results {
			serial.Add(r)
		}
		seed := NewCollector(k)
		for _, r := range results[:seedCount] {
			seed.Add(r)
		}
		a, b := seed.Clone(), seed.Clone()
		for i, r := range results {
			if i%2 == 0 {
				a.Add(r)
			} else {
				b.Add(r)
			}
		}
		final := seed
		final.Merge(a)
		final.Merge(b)
		if got, want := final.Results(), serial.Results(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: seeded clone merge != serial\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestCollectorSkipIsStrict(t *testing.T) {
	col := NewCollector(2)
	col.Add(Result{ID: 1, Dist: 1})
	if col.Skip(5) {
		t.Fatal("Skip before full")
	}
	col.Add(Result{ID: 2, Dist: 3})
	if col.Skip(3) {
		t.Fatal("lb == worst must not be skipped: an ID tie-break can still enter")
	}
	if !col.Skip(3.0000001) {
		t.Fatal("lb > worst must be skipped")
	}
	// A same-distance, lower-ID candidate must actually displace.
	if !col.Add(Result{ID: 0, Dist: 3}) {
		t.Fatal("equal-distance lower-ID candidate rejected")
	}
	rs := col.Results()
	if rs[1].ID != 0 {
		t.Fatalf("results = %v, want ID 0 to win the tie", rs)
	}
}

func TestRangeCollectorMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	results := randomResults(rng, 80, 10)
	serial := NewRangeCollector(5)
	a, b := NewRangeCollector(5), NewRangeCollector(5)
	for i, r := range results {
		serial.Add(r)
		if i%2 == 0 {
			a.Add(r)
		} else {
			b.Add(r)
		}
	}
	merged := NewRangeCollector(5)
	merged.Merge(b)
	merged.Merge(a)
	if got, want := merged.Results(), serial.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("range merge != serial\ngot  %v\nwant %v", got, want)
	}
}
