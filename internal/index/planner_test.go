package index

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
	"repro/internal/zonestat"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// The envelope bound must never exceed the per-entry bound of any member —
// that inequality is the entire byte-identity argument for unit skipping.
func TestEnvelopeBoundIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []Config{
		{SeriesLen: 128, Segments: 16, Bits: 8},
		{SeriesLen: 96, Segments: 8, Bits: 4},
		{SeriesLen: 64, Segments: 7, Bits: 3},
	} {
		q := NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
		var p Pruner
		p.Fill(q.PAA, cfg)
		syn := zonestat.New(cfg.Segments, cfg.Bits)
		minEntry := 0.0
		for n := 0; n < 300; n++ {
			w := sax.FromPAA(sax.PAA(randSeries(rng, cfg.SeriesLen).ZNormalize(), cfg.Segments), cfg.Bits)
			key := sortable.Interleave(w)
			syn.Add(key, int64(n))
			lb := p.MinDistSqKey(key)
			if n == 0 || lb < minEntry {
				minEntry = lb
			}
		}
		env := p.SynopsisBoundSq(syn)
		if env > minEntry+1e-12 {
			t.Fatalf("cfg %+v: envelope bound %g exceeds tightest member bound %g", cfg, env, minEntry)
		}
		// A single-entry synopsis collapses to that entry's own bound.
		one := zonestat.New(cfg.Segments, cfg.Bits)
		w := sax.FromPAA(sax.PAA(randSeries(rng, cfg.SeriesLen).ZNormalize(), cfg.Segments), cfg.Bits)
		key := sortable.Interleave(w)
		one.Add(key, 0)
		if got, want := p.SynopsisBoundSq(one), p.MinDistSqKey(key); got != want {
			t.Fatalf("singleton envelope %g != entry bound %g", got, want)
		}
	}
}

func TestSynopsisBoundEdgeCases(t *testing.T) {
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 4}
	rng := rand.New(rand.NewSource(1))
	q := NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
	var p Pruner
	p.Fill(q.PAA, cfg)
	if got := p.SynopsisBoundSq(nil); got != 0 {
		t.Fatalf("nil synopsis bound = %g, want 0", got)
	}
	if got := p.SynopsisBoundSq(zonestat.New(4, 2)); got != 0 {
		t.Fatalf("shape-mismatched synopsis bound = %g, want 0", got)
	}
	empty := zonestat.New(cfg.Segments, cfg.Bits)
	if got := p.SynopsisBoundSq(empty); !(got > 1e300) {
		t.Fatalf("empty synopsis bound = %g, want +Inf", got)
	}
}

func TestSortPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20)
		units := make([]PlanUnit, n)
		want := make([]PlanUnit, n)
		for i := range units {
			units[i] = PlanUnit{BoundSq: float64(rng.Intn(5)), Idx: i}
			want[i] = units[i]
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].BoundSq < want[j].BoundSq })
		SortPlan(units)
		for i := range units {
			if units[i] != want[i] {
				t.Fatalf("trial %d: SortPlan diverges from stable sort at %d: %v vs %v", trial, i, units, want)
			}
		}
	}
}

func fillEqual(a, b *Pruner) bool {
	if a.segments != b.segments || a.bits != b.bits || a.seriesLen != b.seriesLen {
		return false
	}
	if !paaEqual(a.paa, b.paa) {
		return false
	}
	for lv := 1; lv <= a.bits; lv++ {
		if a.filled[lv] != b.filled[lv] || len(a.tab[lv]) != len(b.tab[lv]) {
			return false
		}
		if a.filled[lv] && !paaEqual(a.tab[lv], b.tab[lv]) {
			return false
		}
	}
	for i := range a.qsyms {
		if a.qsyms[i] != b.qsyms[i] {
			return false
		}
	}
	return true
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	cfg := Config{SeriesLen: 128, Segments: 16, Bits: 8}
	rng := rand.New(rand.NewSource(9))
	q := NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
	pl := &Planner{Cache: NewPlanCache(4)}

	ctx := pl.AcquireCtx(q, cfg)
	var direct Pruner
	direct.Fill(q.PAA, cfg)
	if !fillEqual(&ctx.P, &direct) {
		t.Fatal("miss path diverges from direct Fill")
	}
	if h, m := pl.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first fill: hits=%d misses=%d", h, m)
	}
	pl.Refill(ctx, q, cfg)
	if !fillEqual(&ctx.P, &direct) {
		t.Fatal("hit path diverges from direct Fill")
	}
	if h, m := pl.CacheStats(); h != 1 || m != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d", h, m)
	}

	// A changed Config must miss even with the identical series.
	cfg2 := Config{SeriesLen: 128, Segments: 16, Bits: 6}
	q2 := NewQuery(randSeries(rand.New(rand.NewSource(9)), cfg.SeriesLen), cfg2)
	pl.Refill(ctx, q2, cfg2)
	if h, m := pl.CacheStats(); h != 1 || m != 2 {
		t.Fatalf("after bits change: hits=%d misses=%d", h, m)
	}
	cfg3 := Config{SeriesLen: 128, Segments: 8, Bits: 8}
	q3 := NewQuery(randSeries(rand.New(rand.NewSource(9)), cfg.SeriesLen), cfg3)
	pl.Refill(ctx, q3, cfg3)
	if h, m := pl.CacheStats(); h != 1 || m != 3 {
		t.Fatalf("after segments change: hits=%d misses=%d", h, m)
	}

	// Same quantized signature but different exact PAA must miss: nudge one
	// PAA value within its breakpoint region so the iSAX word is unchanged.
	q4 := q
	q4.PAA = append([]float64(nil), q.PAA...)
	card := 1 << cfg.Bits
	bp := sax.Breakpoints(card)
	sym := sax.Symbol(q4.PAA[0], card)
	lo, hi := -4.0, 4.0
	if sym > 0 {
		lo = bp[sym-1]
	}
	if int(sym) < card-1 {
		hi = bp[sym]
	}
	q4.PAA[0] = lo + (hi-lo)/2
	if q4.PAA[0] == q.PAA[0] {
		q4.PAA[0] = lo + (hi-lo)/3
	}
	if sortable.Interleave(sax.FromPAA(q4.PAA, cfg.Bits)) != q.Key {
		t.Fatal("test setup: perturbed PAA changed the quantized signature")
	}
	pl.Refill(ctx, q4, cfg)
	if h, m := pl.CacheStats(); h != 1 || m != 4 {
		t.Fatalf("after exact-PAA change: hits=%d misses=%d", h, m)
	}
	var direct4 Pruner
	direct4.Fill(q4.PAA, cfg)
	if !fillEqual(&ctx.P, &direct4) {
		t.Fatal("signature-collision path diverges from direct Fill")
	}
	ctx.Release()
}

func TestPlanCacheLRUEviction(t *testing.T) {
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 4}
	rng := rand.New(rand.NewSource(21))
	cache := NewPlanCache(2)
	pl := &Planner{Cache: cache}
	qs := make([]Query, 3)
	for i := range qs {
		qs[i] = NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
	}
	ctx := pl.AcquireCtx(qs[0], cfg)
	pl.Refill(ctx, qs[1], cfg)
	pl.Refill(ctx, qs[0], cfg) // touch 0: now 1 is LRU
	pl.Refill(ctx, qs[2], cfg) // evicts 1
	if cache.Len() != 2 {
		t.Fatalf("cache len %d, want 2", cache.Len())
	}
	pl.Refill(ctx, qs[0], cfg)
	pl.Refill(ctx, qs[1], cfg) // must be a miss again
	h, m := pl.CacheStats()
	if h != 2 || m != 4 {
		t.Fatalf("hits=%d misses=%d, want 2/4", h, m)
	}
	ctx.Release()
}

func TestPlanCacheConcurrent(t *testing.T) {
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 4}
	rng := rand.New(rand.NewSource(33))
	qs := make([]Query, 8)
	for i := range qs {
		qs[i] = NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
	}
	pl := &Planner{Cache: NewPlanCache(4)}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			r := rand.New(rand.NewSource(seed))
			var direct Pruner
			for n := 0; n < 200; n++ {
				q := qs[r.Intn(len(qs))]
				ctx := pl.AcquireCtx(q, cfg)
				direct.Fill(q.PAA, cfg)
				if !fillEqual(&ctx.P, &direct) {
					t.Error("concurrent cache fill diverges from direct Fill")
					ctx.Release()
					return
				}
				ctx.Release()
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

// The warm planned path — cache hit + probe-order planning — must not
// allocate: it runs once per query on every index.
func TestPlannedWarmPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	cfg := Config{SeriesLen: 128, Segments: 16, Bits: 8}
	rng := rand.New(rand.NewSource(77))
	q := NewQuery(randSeries(rng, cfg.SeriesLen), cfg)
	pl := &Planner{Cache: NewPlanCache(8)}
	syns := make([]*zonestat.Synopsis, 6)
	for i := range syns {
		syns[i] = zonestat.New(cfg.Segments, cfg.Bits)
		for n := 0; n < 10; n++ {
			w := sax.FromPAA(sax.PAA(randSeries(rng, cfg.SeriesLen).ZNormalize(), cfg.Segments), cfg.Bits)
			syns[i].Add(sortable.Interleave(w), int64(n))
		}
	}
	// Warm the pools and the cache.
	ctx := pl.AcquireCtx(q, cfg)
	_ = ctx.PlanUnits(len(syns))
	ctx.Release()
	allocs := testing.AllocsPerRun(100, func() {
		c := pl.AcquireCtx(q, cfg)
		units := c.PlanUnits(len(syns))
		for i, syn := range syns {
			units[i] = PlanUnit{BoundSq: c.P.SynopsisBoundSq(syn), Idx: i}
		}
		SortPlan(units)
		pl.NoteSkips(1)
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm planned path allocates %v per run, want 0", allocs)
	}
}

func TestNilPlannerIsEnabledNoop(t *testing.T) {
	var pl *Planner
	if !pl.Enabled() {
		t.Fatal("nil planner must plan")
	}
	pl.NoteSkips(3)
	if pl.Skips() != 0 {
		t.Fatal("nil planner must drop counters")
	}
	if h, m := pl.CacheStats(); h != 0 || m != 0 {
		t.Fatal("nil planner cache stats must be zero")
	}
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 4}
	q := NewQuery(randSeries(rand.New(rand.NewSource(2)), cfg.SeriesLen), cfg)
	ctx := pl.AcquireCtx(q, cfg)
	var direct Pruner
	direct.Fill(q.PAA, cfg)
	if !fillEqual(&ctx.P, &direct) {
		t.Fatal("nil planner AcquireCtx diverges from direct Fill")
	}
	ctx.Release()
	disabled := &Planner{Disabled: true}
	if disabled.Enabled() {
		t.Fatal("disabled planner must not plan")
	}
}
