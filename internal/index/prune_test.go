package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
)

func randPAA(rng *rand.Rand, w int) []float64 {
	paa := make([]float64, w)
	for i := range paa {
		paa[i] = rng.NormFloat64()
	}
	return paa
}

func randWord(rng *rand.Rand, w, bits int) sax.Word {
	syms := make([]uint8, w)
	for i := range syms {
		syms[i] = uint8(rng.Intn(1 << bits))
	}
	return sax.Word{Symbols: syms, Bits: bits}
}

// TestPrunerMatchesMinDistPAA is the core equivalence property of the
// squared-space pipeline: the table-based squared lower bound equals
// sax.MinDistPAA squared, across random queries, words, segment counts, and
// cardinalities.
func TestPrunerMatchesMinDistPAA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var p Pruner
	for trial := 0; trial < 2000; trial++ {
		w := 1 + rng.Intn(sortable.MaxSegments)
		bits := 1 + rng.Intn(sax.MaxBits)
		for w*bits > 128 {
			bits = 1 + rng.Intn(sax.MaxBits)
		}
		n := w * (1 + rng.Intn(16))
		cfg := Config{SeriesLen: n, Segments: w, Bits: bits}
		paa := randPAA(rng, w)
		p.Fill(paa, cfg)
		word := randWord(rng, w, bits)
		key := sortable.Interleave(word)
		got := p.MinDistSqKey(key)
		want := sax.MinDistPAA(paa, word, n)
		want *= want
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (w=%d bits=%d n=%d): MinDistSqKey=%v, MinDistPAA^2=%v", trial, w, bits, n, got, want)
		}
	}
}

// TestPrunerMixedMatchesRegions checks the per-segment-cardinality bound
// (the ADS+ node shape) against the region-based computation it replaced.
func TestPrunerMixedMatchesRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var p Pruner
	for trial := 0; trial < 2000; trial++ {
		w := 1 + rng.Intn(sortable.MaxSegments)
		maxBits := 1 + rng.Intn(sax.MaxBits)
		n := w * (1 + rng.Intn(16))
		cfg := Config{SeriesLen: n, Segments: w, Bits: maxBits}
		paa := randPAA(rng, w)
		p.Fill(paa, cfg)
		p.FillAll()
		syms := make([]uint8, w)
		bits := make([]uint8, w)
		for i := range syms {
			bits[i] = uint8(1 + rng.Intn(maxBits))
			syms[i] = uint8(rng.Intn(1 << bits[i]))
		}
		got := p.MinDistSqMixed(syms, bits)
		// Reference: the region-based per-segment accumulation.
		acc := 0.0
		for i, v := range paa {
			lo, hi := sax.Region(syms[i], int(bits[i]))
			var d float64
			switch {
			case v < lo:
				d = lo - v
			case v > hi:
				d = v - hi
			}
			acc += d * d
		}
		want := float64(n) / float64(w) * acc
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: MinDistSqMixed=%v, want %v", trial, got, want)
		}
	}
}

// TestPrunerLowerBoundsTrueDistance re-verifies, end to end through the
// tables, the MINDIST contract: the squared bound never exceeds the squared
// true distance between the query and any series whose summarization is the
// probed key.
func TestPrunerLowerBoundsTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 6}
	var p Pruner
	for trial := 0; trial < 500; trial++ {
		q := make(series.Series, cfg.SeriesLen)
		s := make(series.Series, cfg.SeriesLen)
		for i := range q {
			q[i] = rng.NormFloat64()
			s[i] = rng.NormFloat64()
		}
		query := NewQuery(q, cfg)
		p.Fill(query.PAA, cfg)
		key, z := cfg.Summarize(s)
		lbSq := p.MinDistSqKey(key)
		dSq := query.Norm.SqDist(z)
		if lbSq > dSq*(1+1e-12)+1e-12 {
			t.Fatalf("trial %d: squared lower bound %v exceeds squared distance %v", trial, lbSq, dSq)
		}
	}
}

// TestEvalEncodedMatchesEvalCandidates feeds the same candidate set through
// the encoded-page pipeline and the decoded-entry pipeline and demands
// identical collector contents, materialized and not.
func TestEvalEncodedMatchesEvalCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, materialized := range []bool{false, true} {
		cfg := Config{SeriesLen: 32, Segments: 8, Bits: 4, Materialized: materialized}
		codec := cfg.Codec()
		ds := series.NewDataset(cfg.SeriesLen)
		var entries []record.Entry
		var page []byte
		for i := 0; i < 40; i++ {
			s := make(series.Series, cfg.SeriesLen)
			for j := range s {
				s[j] = rng.NormFloat64()
			}
			key, z := cfg.Summarize(s)
			if _, err := ds.Append(z); err != nil {
				t.Fatal(err)
			}
			e := record.Entry{Key: key, ID: int64(i), TS: int64(i)}
			if materialized {
				e.Payload = z
			}
			entries = append(entries, e)
			var err error
			page, err = codec.Append(page, e)
			if err != nil {
				t.Fatal(err)
			}
		}
		qs := make(series.Series, cfg.SeriesLen)
		for j := range qs {
			qs[j] = rng.NormFloat64()
		}
		q := NewQuery(qs, cfg)

		ctx1 := AcquireCtx(q, cfg)
		colA := NewCollector(5)
		if _, err := EvalCandidates(q, entries, ds, colA, ctx1.Scratch0()); err != nil {
			t.Fatal(err)
		}
		ctx1.Release()

		ctx2 := AcquireCtx(q, cfg)
		colB := NewCollector(5)
		if _, err := EvalEncoded(q, page, len(entries), codec, ds, colB, ctx2.Scratch0()); err != nil {
			t.Fatal(err)
		}
		ctx2.Release()

		ra, rb := colA.Results(), colB.Results()
		if len(ra) != len(rb) {
			t.Fatalf("materialized=%v: %d vs %d results", materialized, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("materialized=%v result %d: %+v vs %+v", materialized, i, ra[i], rb[i])
			}
		}
	}
}

// TestCollectorSquaredRoundTrip: distances added as true distances come
// back from Results unchanged — the sqrt(d*d) == d round-trip the squared
// internal representation relies on.
func TestCollectorSquaredRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCollector(64)
	dists := make([]float64, 64)
	for i := range dists {
		dists[i] = rng.ExpFloat64() * 100
		c.Add(Result{ID: int64(i), Dist: dists[i]})
	}
	for _, r := range c.Results() {
		if r.Dist != dists[r.ID] {
			t.Fatalf("distance %v round-tripped to %v", dists[r.ID], r.Dist)
		}
	}
}

// TestPooledCloneMerge exercises the pooled fan-out clone path against the
// plain Clone/Merge path.
func TestPooledCloneMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		base := NewCollector(4)
		for i := 0; i < 4; i++ {
			base.Add(Result{ID: int64(i), Dist: 50 + rng.Float64()})
		}
		plain := base.Clone()
		pooled := base.PooledClone()
		for i := 0; i < 100; i++ {
			r := Result{ID: int64(rng.Intn(60)), TS: int64(i), Dist: rng.Float64() * 100}
			plain.Add(r)
			pooled.Add(r)
		}
		dstA := base.Clone()
		dstA.Merge(plain)
		dstB := base.Clone()
		dstB.MergeRelease(pooled)
		ra, rb := dstA.Results(), dstB.Results()
		if len(ra) != len(rb) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, ra[i], rb[i])
			}
		}
	}
}

// TestProbeDoesNotAllocate pins the tentpole claim: once a query's context
// is built, a candidate probe (bound lookup + collector test) performs zero
// heap allocations. Skipped under the race detector, whose instrumentation
// changes allocation behavior.
func TestProbeDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	cfg := Config{SeriesLen: 64, Segments: 8, Bits: 6}
	rng := rand.New(rand.NewSource(13))
	qs := make(series.Series, cfg.SeriesLen)
	for i := range qs {
		qs[i] = rng.NormFloat64()
	}
	q := NewQuery(qs, cfg)
	ctx := AcquireCtx(q, cfg)
	defer ctx.Release()
	sc := ctx.Scratch0()
	col := NewCollector(1)
	col.Add(Result{ID: -1, Dist: 0.5})
	key := sortable.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
	allocs := testing.AllocsPerRun(1000, func() {
		lbSq := sc.P.MinDistSqKey(key)
		if col.SkipSq(lbSq) {
			return
		}
		col.AddSq(7, 0, lbSq)
	})
	if allocs != 0 {
		t.Fatalf("probe allocated %v times per run, want 0", allocs)
	}
}
