// Package index defines the abstractions shared by every data series index
// in the repository (CTree, CLSM, ADS+): the summarization configuration,
// query preparation, nearest-neighbor result collection, and the Index
// interface the exploration tools and benchmarks program against.
//
// Convention: indexes z-normalize series at ingestion and queries at
// preparation, so all distances are Euclidean distances between
// z-normalized series — the standard setting in the data series similarity
// search literature the paper builds on.
//
// # Planning
//
// The package also hosts the statistics-driven query planner (Planner,
// PlanUnit, PlanCache): zone-map synopses from package zonestat turn into
// MINDIST lower bounds that order probe units best-bound-first and skip
// units whose bound exceeds the collector's current worst. The bound is a
// true lower bound, so planned and unplanned searches return byte-identical
// results; only I/O cost changes. A PlanCache lets repeated query shapes
// (keyed by quantized iSAX signature, hit only on exact PAA equality) reuse
// their filled pruning tables.
package index

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
)

// Config fixes the summarization shape shared by an index and its queries.
type Config struct {
	SeriesLen    int  // length of every data series
	Segments     int  // iSAX segments (w)
	Bits         int  // cardinality bits per segment
	Materialized bool // entries carry the full series inline
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SeriesLen <= 0 {
		return fmt.Errorf("index: SeriesLen must be positive, got %d", c.SeriesLen)
	}
	if c.Segments <= 0 || c.Segments > sortable.MaxSegments {
		return fmt.Errorf("index: Segments must be in [1,%d], got %d", sortable.MaxSegments, c.Segments)
	}
	if c.Bits <= 0 || c.Bits > sax.MaxBits {
		return fmt.Errorf("index: Bits must be in [1,%d], got %d", sax.MaxBits, c.Bits)
	}
	if c.Segments > c.SeriesLen {
		return fmt.Errorf("index: Segments %d exceeds SeriesLen %d", c.Segments, c.SeriesLen)
	}
	return nil
}

// Codec returns the entry codec for this configuration.
func (c Config) Codec() record.Codec {
	return record.Codec{SeriesLen: c.SeriesLen, Materialized: c.Materialized}
}

// Summarize z-normalizes s and returns its sortable key along with the
// z-normalized series.
func (c Config) Summarize(s series.Series) (sortable.Key, series.Series) {
	z := s.ZNormalize()
	return sortable.FromSeries(z, c.Segments, c.Bits), z
}

// MinDistKey returns the iSAX lower bound between a prepared query's PAA and
// the series summarized by key k: no series with this key can be closer.
func (c Config) MinDistKey(paa []float64, k sortable.Key) float64 {
	w := sortable.Deinterleave(k, c.Segments, c.Bits)
	return sax.MinDistPAA(paa, w, c.SeriesLen)
}

// Query is a prepared similarity-search target.
type Query struct {
	Norm series.Series // z-normalized query series
	PAA  []float64     // PAA of Norm
	Key  sortable.Key  // sortable summarization of Norm
	// Window restricts the search to entries with TS in [MinTS, MaxTS];
	// both zero means unrestricted. Used by the streaming schemes.
	MinTS, MaxTS int64
	Windowed     bool
	// Trace, when non-nil, records this query's execution — probe units
	// probed vs. skipped with their synopsis bounds, plan-cache behavior,
	// candidate verification tallies, per-phase wall time — for the
	// ?trace=1 / explain surface. It flows into the pooled SearchCtx and
	// its Scratches via AcquireCtx; the untraced default (nil) costs the
	// hot path one nil check per instrumentation point. Answers are
	// byte-identical traced or not.
	Trace *obs.QueryTrace
}

// NewQuery prepares a raw series as a query under config c.
func NewQuery(s series.Series, c Config) Query {
	z := s.ZNormalize()
	paa := sax.PAA(z, c.Segments)
	return Query{
		Norm: z,
		PAA:  paa,
		Key:  sortable.Interleave(sax.FromPAA(paa, c.Bits)),
	}
}

// WithWindow returns a copy of q restricted to the temporal window
// [minTS, maxTS] (inclusive).
func (q Query) WithWindow(minTS, maxTS int64) Query {
	q.MinTS, q.MaxTS = minTS, maxTS
	q.Windowed = true
	return q
}

// InWindow reports whether a timestamp satisfies the query's window.
func (q Query) InWindow(ts int64) bool {
	return !q.Windowed || (ts >= q.MinTS && ts <= q.MaxTS)
}

// Result is one nearest-neighbor answer.
type Result struct {
	ID   int64   // series ID in the raw store
	TS   int64   // ingestion timestamp
	Dist float64 // true Euclidean distance (z-normalized)
}

// sqItem is one collected result held in squared space: collectors keep
// and compare squared distances so the hot path never pays a square root;
// the conversion to a true distance happens exactly once, in Results().
// sqrt is monotone, so ordering by (distSq, id) is ordering by (Dist, ID),
// and because IEEE-754 sqrt is correctly rounded, sqrt(d*d) == d for any
// non-negative double whose square neither overflows nor underflows —
// round-tripping a true distance through Add/Results is exact. (Distances
// below ~1.5e-154 square into the subnormal range and collapse toward 0;
// z-normalized series distances sit many orders of magnitude above that.)
type sqItem struct {
	id, ts int64
	distSq float64
}

// worseSq reports whether a is strictly worse than b under the collector's
// total order: farther first, with the larger ID losing ties. Ordering
// results totally (rather than by distance alone) is what makes collection
// order-independent, which the parallel query engine relies on: per-worker
// collectors merged in any order yield the same k results as one serial
// collector fed the same candidates.
func worseSq(a, b sqItem) bool {
	if a.distSq != b.distSq {
		return a.distSq > b.distSq
	}
	return a.id > b.id
}

// Collector maintains the k best results seen so far (a max-heap on
// (squared distance, ID)), deduplicating by series ID. The heap is
// hand-rolled rather than container/heap so pushes never box results into
// interfaces — candidate collection allocates nothing.
//
// The collector's final contents are the k smallest (Dist, ID) pairs among
// every result offered, independent of the order they were offered in —
// the determinism guarantee behind parallel search.
type Collector struct {
	k     int
	items []sqItem
	seen  map[int64]bool
}

// NewCollector creates a collector for the k nearest neighbors.
func NewCollector(k int) *Collector {
	if k < 1 {
		k = 1
	}
	return &Collector{k: k, seen: make(map[int64]bool, k)}
}

// Add offers a candidate carrying a true distance. It returns true if the
// candidate entered the current top-k.
func (c *Collector) Add(r Result) bool {
	return c.AddSq(r.ID, r.TS, r.Dist*r.Dist)
}

// AddSq offers a candidate by squared distance — the hot-path entry point:
// verifiers accumulate squared sums and never convert back. It returns true
// if the candidate entered the current top-k.
func (c *Collector) AddSq(id, ts int64, distSq float64) bool {
	if c.seen[id] {
		return false
	}
	it := sqItem{id: id, ts: ts, distSq: distSq}
	if len(c.items) < c.k {
		c.seen[id] = true
		c.items = append(c.items, it)
		c.siftUp(len(c.items) - 1)
		return true
	}
	if !worseSq(c.items[0], it) {
		return false
	}
	c.seen[id] = true
	delete(c.seen, c.items[0].id)
	c.items[0] = it
	c.siftDown(0)
	return true
}

func (c *Collector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseSq(c.items[i], c.items[p]) {
			return
		}
		c.items[i], c.items[p] = c.items[p], c.items[i]
		i = p
	}
}

func (c *Collector) siftDown(i int) {
	n := len(c.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && worseSq(c.items[l], c.items[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && worseSq(c.items[r], c.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		c.items[i], c.items[worst] = c.items[worst], c.items[i]
		i = worst
	}
}

// Skip reports whether a candidate whose iSAX lower bound is lb cannot
// change the collected results and may be skipped.
func (c *Collector) Skip(lb float64) bool {
	return c.SkipSq(lb * lb)
}

// SkipSq is Skip in squared space. The comparison is strict: a candidate
// whose true distance exactly equals the current k-th distance can still
// enter on an ID tie-break, so only bounds strictly beyond the k-th
// distance are prunable. Using SkipSq (rather than comparing against
// WorstSq directly) is what keeps pruning consistent with the collector's
// total order, and therefore keeps parallel and serial search identical.
func (c *Collector) SkipSq(lbSq float64) bool {
	return len(c.items) >= c.k && lbSq > c.items[0].distSq
}

// Clone returns a new collector with the same k and the same current
// results. The parallel engine seeds one clone per worker so every worker
// prunes with the bound established by the approximate phase. Prefer
// PooledClone/MergeRelease on the fan-out path: they recycle the clones'
// heap and seen-map storage across queries.
func (c *Collector) Clone() *Collector {
	n := NewCollector(c.k)
	n.copyFrom(c)
	return n
}

// copyFrom seeds an empty collector with c's items (a verbatim copy
// preserves the heap invariant) and rebuilds the seen set.
func (n *Collector) copyFrom(c *Collector) {
	n.items = append(n.items, c.items...)
	for _, it := range c.items {
		n.seen[it.id] = true
	}
}

// collectorPool recycles collectors across fan-outs so each worker clone
// reuses a previously allocated heap slice and seen map instead of churning
// fresh ones per query.
var collectorPool = sync.Pool{New: func() any { return new(Collector) }}

// PooledClone is Clone drawing storage from the collector pool. Pair it
// with MergeRelease so the storage returns to the pool after the fan-out.
func (c *Collector) PooledClone() *Collector {
	n := collectorPool.Get().(*Collector)
	n.k = c.k
	n.items = n.items[:0]
	if n.seen == nil {
		n.seen = make(map[int64]bool, c.k)
	} else {
		clear(n.seen)
	}
	n.copyFrom(c)
	return n
}

// Merge folds another collector's results into c, deduplicating by ID.
// Because collection is order-independent, merging per-worker collectors in
// any order produces the same final top-k as a single serial collector.
func (c *Collector) Merge(o *Collector) {
	for _, it := range o.items {
		c.AddSq(it.id, it.ts, it.distSq)
	}
}

// MergeRelease merges o into c and returns o's storage to the collector
// pool. o must not be used afterwards.
func (c *Collector) MergeRelease(o *Collector) {
	c.Merge(o)
	collectorPool.Put(o)
}

// Worst returns the current pruning bound as a true distance: the distance
// of the k-th best result, or +Inf while fewer than k results are held.
func (c *Collector) Worst() float64 {
	return math.Sqrt(c.WorstSq())
}

// WorstSq returns the squared pruning bound — the hot-path form: verifiers
// pass it straight to the early-abandoning squared distance accumulators.
func (c *Collector) WorstSq() float64 {
	if len(c.items) < c.k {
		return math.Inf(1)
	}
	return c.items[0].distSq
}

// Full reports whether k results have been collected.
func (c *Collector) Full() bool { return len(c.items) >= c.k }

// Each visits every collected result with its exact squared distance, in
// unspecified (heap) order. The sharded merge uses it to fold per-shard
// collectors together on the original accumulated sums — the same ordering
// keys the unsharded collector compares — so sharding preserves even
// sub-ulp tie-breaks that re-squaring a reported distance could lose.
func (c *Collector) Each(fn func(id, ts int64, distSq float64)) {
	for _, it := range c.items {
		fn(it.id, it.ts, it.distSq)
	}
}

// Results returns the collected results sorted by ascending distance. This
// is the only place squared distances convert back to true distances.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.items))
	for i, it := range c.items {
		out[i] = Result{ID: it.id, TS: it.ts, Dist: math.Sqrt(it.distSq)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Index is the common interface of every data series index in the repo.
type Index interface {
	// Name identifies the index variant (e.g. "CTree", "CLSMFull").
	Name() string
	// Count returns the number of indexed series.
	Count() int64
	// ApproxSearch returns up to k likely near neighbors by navigating
	// directly to the query's summarization region. No distance guarantee.
	ApproxSearch(q Query, k int) ([]Result, error)
	// ExactSearch returns the true k nearest neighbors.
	ExactSearch(q Query, k int) ([]Result, error)
}

// Inserter is implemented by indexes that accept incremental inserts
// (CLSM natively; CTree via leaf slack; ADS+ top-down).
type Inserter interface {
	Insert(s series.Series, ts int64) error
}

// RangeSearcher is implemented by indexes that answer range (epsilon)
// queries: every series within Euclidean distance eps of the query.
type RangeSearcher interface {
	RangeSearch(q Query, eps float64) ([]Result, error)
}

// RangeCollector accumulates all results within eps, sorted by distance on
// Results(). Unlike Collector there is no k; the pruning bound is eps
// itself, held squared so membership tests stay in squared space.
type RangeCollector struct {
	eps   float64
	epsSq float64
	items []sqItem
	seen  map[int64]bool
}

// NewRangeCollector creates a collector for results within eps.
func NewRangeCollector(eps float64) *RangeCollector {
	return &RangeCollector{eps: eps, epsSq: eps * eps, seen: make(map[int64]bool)}
}

// Bound returns the pruning bound as a true distance: candidates with lower
// bounds beyond Bound cannot qualify.
func (c *RangeCollector) Bound() float64 { return c.eps }

// BoundSq returns the squared epsilon, used as the early-abandon limit for
// candidate verification (the same fl(eps*eps) the true-distance code used
// as bound*bound).
func (c *RangeCollector) BoundSq() float64 { return c.epsSq }

// PruneSq reports whether a candidate (or subtree) whose squared lower
// bound is lbSq cannot contain qualifying results and may be skipped. The
// comparison happens in true-distance space, mirroring AddSq's membership
// test, so prune-implies-reject holds exactly even in the 1-ulp window
// where fl(eps*eps) under-rounds eps² — one sqrt per pruning decision on
// the range path only (k-NN pruning, whose bound is a collected distance
// rather than a caller contract, stays fully squared).
func (c *RangeCollector) PruneSq(lbSq float64) bool {
	return math.Sqrt(lbSq) > c.eps
}

// Add offers a candidate carrying a true distance; it is kept when within
// eps and not a duplicate.
func (c *RangeCollector) Add(r Result) bool {
	return c.AddSq(r.ID, r.TS, r.Dist*r.Dist)
}

// AddSq offers a candidate by squared distance, the hot-path entry point.
// Membership is decided in true-distance space (one sqrt per candidate that
// survived lower-bound pruning — a rounding error away from free): a caller
// who sets eps to a distance reported in a Result must get that boundary
// neighbor back, exactly as when the comparison was r.Dist > eps, and
// fl(eps*eps) can under-round that boundary in squared space.
func (c *RangeCollector) AddSq(id, ts int64, distSq float64) bool {
	if math.Sqrt(distSq) > c.eps || c.seen[id] {
		return false
	}
	c.seen[id] = true
	c.items = append(c.items, sqItem{id: id, ts: ts, distSq: distSq})
	return true
}

// Clone returns a new empty collector with the same epsilon. Unlike
// Collector.Clone it carries no seed results: range collection prunes with
// the static eps bound, so workers gain nothing from seeding. Prefer
// PooledClone/MergeRelease on the fan-out path.
func (c *RangeCollector) Clone() *RangeCollector { return NewRangeCollector(c.eps) }

// rangeCollectorPool recycles range collectors across fan-outs, mirroring
// the Collector pool: per-worker clones reuse previously allocated items
// slices and seen maps.
var rangeCollectorPool = sync.Pool{New: func() any { return new(RangeCollector) }}

// PooledClone is Clone drawing storage from the range-collector pool. Pair
// it with MergeRelease so the storage returns to the pool after the
// fan-out.
func (c *RangeCollector) PooledClone() *RangeCollector {
	n := rangeCollectorPool.Get().(*RangeCollector)
	n.eps, n.epsSq = c.eps, c.epsSq
	n.items = n.items[:0]
	if n.seen == nil {
		n.seen = make(map[int64]bool)
	} else {
		clear(n.seen)
	}
	return n
}

// MergeRelease merges o into c and returns o's storage to the pool. o must
// not be used afterwards.
func (c *RangeCollector) MergeRelease(o *RangeCollector) {
	c.Merge(o)
	rangeCollectorPool.Put(o)
}

// Merge folds another range collector's results into c, deduplicating by
// ID. The collected set — every candidate within eps — does not depend on
// order, so per-worker range collectors merge deterministically.
func (c *RangeCollector) Merge(o *RangeCollector) {
	for _, it := range o.items {
		c.AddSq(it.id, it.ts, it.distSq)
	}
}

// Each visits every collected result with its exact squared distance, in
// collection order. The distributed tier uses it to ship qualifying series
// to the router as (global ID, TS, squared distance) triples; on the range
// path re-squaring is exact, so the wire preserves every distance
// bit-for-bit either way.
func (c *RangeCollector) Each(fn func(id, ts int64, distSq float64)) {
	for _, it := range c.items {
		fn(it.id, it.ts, it.distSq)
	}
}

// Results returns all collected results sorted by ascending distance.
func (c *RangeCollector) Results() []Result {
	out := make([]Result, len(c.items))
	for i, it := range c.items {
		out[i] = Result{ID: it.id, TS: it.ts, Dist: math.Sqrt(it.distSq)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TrueDist computes the true distance between a prepared query and a
// candidate entry, early-abandoning beyond bound. It is the legacy
// convenience form of TrueDistSq (see prune.go), kept for callers off the
// hot path; it performs no scratch reuse.
func TrueDist(q Query, e record.Entry, raw series.RawStore, bound float64) (float64, error) {
	sq, err := TrueDistSq(q, e, raw, bound*bound, nil)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(sq), nil
}
