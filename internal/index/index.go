// Package index defines the abstractions shared by every data series index
// in the repository (CTree, CLSM, ADS+): the summarization configuration,
// query preparation, nearest-neighbor result collection, and the Index
// interface the exploration tools and benchmarks program against.
//
// Convention: indexes z-normalize series at ingestion and queries at
// preparation, so all distances are Euclidean distances between
// z-normalized series — the standard setting in the data series similarity
// search literature the paper builds on.
package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
)

// Config fixes the summarization shape shared by an index and its queries.
type Config struct {
	SeriesLen    int  // length of every data series
	Segments     int  // iSAX segments (w)
	Bits         int  // cardinality bits per segment
	Materialized bool // entries carry the full series inline
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SeriesLen <= 0 {
		return fmt.Errorf("index: SeriesLen must be positive, got %d", c.SeriesLen)
	}
	if c.Segments <= 0 || c.Segments > sortable.MaxSegments {
		return fmt.Errorf("index: Segments must be in [1,%d], got %d", sortable.MaxSegments, c.Segments)
	}
	if c.Bits <= 0 || c.Bits > sax.MaxBits {
		return fmt.Errorf("index: Bits must be in [1,%d], got %d", sax.MaxBits, c.Bits)
	}
	if c.Segments > c.SeriesLen {
		return fmt.Errorf("index: Segments %d exceeds SeriesLen %d", c.Segments, c.SeriesLen)
	}
	return nil
}

// Codec returns the entry codec for this configuration.
func (c Config) Codec() record.Codec {
	return record.Codec{SeriesLen: c.SeriesLen, Materialized: c.Materialized}
}

// Summarize z-normalizes s and returns its sortable key along with the
// z-normalized series.
func (c Config) Summarize(s series.Series) (sortable.Key, series.Series) {
	z := s.ZNormalize()
	return sortable.FromSeries(z, c.Segments, c.Bits), z
}

// MinDistKey returns the iSAX lower bound between a prepared query's PAA and
// the series summarized by key k: no series with this key can be closer.
func (c Config) MinDistKey(paa []float64, k sortable.Key) float64 {
	w := sortable.Deinterleave(k, c.Segments, c.Bits)
	return sax.MinDistPAA(paa, w, c.SeriesLen)
}

// Query is a prepared similarity-search target.
type Query struct {
	Norm series.Series // z-normalized query series
	PAA  []float64     // PAA of Norm
	Key  sortable.Key  // sortable summarization of Norm
	// Window restricts the search to entries with TS in [MinTS, MaxTS];
	// both zero means unrestricted. Used by the streaming schemes.
	MinTS, MaxTS int64
	Windowed     bool
}

// NewQuery prepares a raw series as a query under config c.
func NewQuery(s series.Series, c Config) Query {
	z := s.ZNormalize()
	paa := sax.PAA(z, c.Segments)
	return Query{
		Norm: z,
		PAA:  paa,
		Key:  sortable.Interleave(sax.FromPAA(paa, c.Bits)),
	}
}

// WithWindow returns a copy of q restricted to the temporal window
// [minTS, maxTS] (inclusive).
func (q Query) WithWindow(minTS, maxTS int64) Query {
	q.MinTS, q.MaxTS = minTS, maxTS
	q.Windowed = true
	return q
}

// InWindow reports whether a timestamp satisfies the query's window.
func (q Query) InWindow(ts int64) bool {
	return !q.Windowed || (ts >= q.MinTS && ts <= q.MaxTS)
}

// Result is one nearest-neighbor answer.
type Result struct {
	ID   int64   // series ID in the raw store
	TS   int64   // ingestion timestamp
	Dist float64 // true Euclidean distance (z-normalized)
}

// Collector maintains the k best results seen so far (a max-heap on
// distance), deduplicating by series ID.
type Collector struct {
	k     int
	items resultHeap
	seen  map[int64]bool
}

// NewCollector creates a collector for the k nearest neighbors.
func NewCollector(k int) *Collector {
	if k < 1 {
		k = 1
	}
	return &Collector{k: k, seen: make(map[int64]bool)}
}

// Add offers a candidate. It returns true if the candidate entered the
// current top-k.
func (c *Collector) Add(r Result) bool {
	if c.seen[r.ID] {
		return false
	}
	if len(c.items) < c.k {
		c.seen[r.ID] = true
		heap.Push(&c.items, r)
		return true
	}
	if r.Dist >= c.items[0].Dist {
		return false
	}
	c.seen[r.ID] = true
	delete(c.seen, c.items[0].ID)
	c.items[0] = r
	heap.Fix(&c.items, 0)
	return true
}

// Worst returns the current pruning bound: the distance of the k-th best
// result, or +Inf while fewer than k results are held. Any candidate whose
// lower bound meets or exceeds Worst can be skipped.
func (c *Collector) Worst() float64 {
	if len(c.items) < c.k {
		return math.Inf(1)
	}
	return c.items[0].Dist
}

// Full reports whether k results have been collected.
func (c *Collector) Full() bool { return len(c.items) >= c.k }

// Results returns the collected results sorted by ascending distance.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist } // max-heap
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*resultHeap)(nil)

// Index is the common interface of every data series index in the repo.
type Index interface {
	// Name identifies the index variant (e.g. "CTree", "CLSMFull").
	Name() string
	// Count returns the number of indexed series.
	Count() int64
	// ApproxSearch returns up to k likely near neighbors by navigating
	// directly to the query's summarization region. No distance guarantee.
	ApproxSearch(q Query, k int) ([]Result, error)
	// ExactSearch returns the true k nearest neighbors.
	ExactSearch(q Query, k int) ([]Result, error)
}

// Inserter is implemented by indexes that accept incremental inserts
// (CLSM natively; CTree via leaf slack; ADS+ top-down).
type Inserter interface {
	Insert(s series.Series, ts int64) error
}

// RangeSearcher is implemented by indexes that answer range (epsilon)
// queries: every series within Euclidean distance eps of the query.
type RangeSearcher interface {
	RangeSearch(q Query, eps float64) ([]Result, error)
}

// RangeCollector accumulates all results within eps, sorted by distance on
// Results(). Unlike Collector there is no k; the pruning bound is eps
// itself.
type RangeCollector struct {
	eps   float64
	items []Result
	seen  map[int64]bool
}

// NewRangeCollector creates a collector for results within eps.
func NewRangeCollector(eps float64) *RangeCollector {
	return &RangeCollector{eps: eps, seen: make(map[int64]bool)}
}

// Bound returns the pruning bound: candidates with lower bounds >= Bound
// cannot qualify.
func (c *RangeCollector) Bound() float64 { return c.eps }

// Add offers a candidate; it is kept when within eps and not a duplicate.
func (c *RangeCollector) Add(r Result) bool {
	if r.Dist > c.eps || c.seen[r.ID] {
		return false
	}
	c.seen[r.ID] = true
	c.items = append(c.items, r)
	return true
}

// Results returns all collected results sorted by ascending distance.
func (c *RangeCollector) Results() []Result {
	out := make([]Result, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EvalRangeCandidates verifies in-memory candidates against a range
// collector, pruning by the epsilon bound.
func EvalRangeCandidates(q Query, entries []record.Entry, cfg Config, raw series.RawStore, col *RangeCollector) error {
	for _, e := range entries {
		if cfg.MinDistKey(q.PAA, e.Key) > col.Bound() {
			continue
		}
		d, err := TrueDist(q, e, raw, col.Bound())
		if err != nil {
			return err
		}
		col.Add(Result{ID: e.ID, TS: e.TS, Dist: d})
	}
	return nil
}

// EvalCandidates evaluates a batch of already-in-memory candidate entries
// against the collector in ascending lower-bound order: the most promising
// candidate is verified first, collapsing the pruning bound so the rest are
// skipped without paying their (possibly random) raw fetches. This is the
// standard candidate-ordering optimization of data series indexes; every
// leaf/page evaluation in the repository funnels through it. It returns the
// number of candidates considered.
func EvalCandidates(q Query, entries []record.Entry, cfg Config, raw series.RawStore, col *Collector) (int, error) {
	type cand struct {
		e  record.Entry
		lb float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		cands = append(cands, cand{e: e, lb: cfg.MinDistKey(q.PAA, e.Key)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
	for _, c := range cands {
		bound := col.Worst()
		if col.Full() && c.lb >= bound {
			break // all remaining candidates have larger lower bounds
		}
		d, err := TrueDist(q, c.e, raw, bound)
		if err != nil {
			return len(cands), err
		}
		col.Add(Result{ID: c.e.ID, TS: c.e.TS, Dist: d})
	}
	return len(cands), nil
}

// TrueDist computes the distance between a prepared query and a candidate
// entry, using the inline payload when materialized or fetching from raw
// otherwise. The payload/raw series must already be z-normalized.
func TrueDist(q Query, e record.Entry, raw series.RawStore, bound float64) (float64, error) {
	var s series.Series
	if e.Payload != nil {
		s = e.Payload
	} else {
		if raw == nil {
			return 0, fmt.Errorf("index: non-materialized entry %d but no raw store", e.ID)
		}
		var err error
		s, err = raw.Get(int(e.ID))
		if err != nil {
			return 0, err
		}
	}
	sq := q.Norm.SqDistEarlyAbandon(s, bound*bound)
	return math.Sqrt(sq), nil
}
