// Package index defines the abstractions shared by every data series index
// in the repository (CTree, CLSM, ADS+): the summarization configuration,
// query preparation, nearest-neighbor result collection, and the Index
// interface the exploration tools and benchmarks program against.
//
// Convention: indexes z-normalize series at ingestion and queries at
// preparation, so all distances are Euclidean distances between
// z-normalized series — the standard setting in the data series similarity
// search literature the paper builds on.
package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
)

// Config fixes the summarization shape shared by an index and its queries.
type Config struct {
	SeriesLen    int  // length of every data series
	Segments     int  // iSAX segments (w)
	Bits         int  // cardinality bits per segment
	Materialized bool // entries carry the full series inline
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SeriesLen <= 0 {
		return fmt.Errorf("index: SeriesLen must be positive, got %d", c.SeriesLen)
	}
	if c.Segments <= 0 || c.Segments > sortable.MaxSegments {
		return fmt.Errorf("index: Segments must be in [1,%d], got %d", sortable.MaxSegments, c.Segments)
	}
	if c.Bits <= 0 || c.Bits > sax.MaxBits {
		return fmt.Errorf("index: Bits must be in [1,%d], got %d", sax.MaxBits, c.Bits)
	}
	if c.Segments > c.SeriesLen {
		return fmt.Errorf("index: Segments %d exceeds SeriesLen %d", c.Segments, c.SeriesLen)
	}
	return nil
}

// Codec returns the entry codec for this configuration.
func (c Config) Codec() record.Codec {
	return record.Codec{SeriesLen: c.SeriesLen, Materialized: c.Materialized}
}

// Summarize z-normalizes s and returns its sortable key along with the
// z-normalized series.
func (c Config) Summarize(s series.Series) (sortable.Key, series.Series) {
	z := s.ZNormalize()
	return sortable.FromSeries(z, c.Segments, c.Bits), z
}

// MinDistKey returns the iSAX lower bound between a prepared query's PAA and
// the series summarized by key k: no series with this key can be closer.
func (c Config) MinDistKey(paa []float64, k sortable.Key) float64 {
	w := sortable.Deinterleave(k, c.Segments, c.Bits)
	return sax.MinDistPAA(paa, w, c.SeriesLen)
}

// Query is a prepared similarity-search target.
type Query struct {
	Norm series.Series // z-normalized query series
	PAA  []float64     // PAA of Norm
	Key  sortable.Key  // sortable summarization of Norm
	// Window restricts the search to entries with TS in [MinTS, MaxTS];
	// both zero means unrestricted. Used by the streaming schemes.
	MinTS, MaxTS int64
	Windowed     bool
}

// NewQuery prepares a raw series as a query under config c.
func NewQuery(s series.Series, c Config) Query {
	z := s.ZNormalize()
	paa := sax.PAA(z, c.Segments)
	return Query{
		Norm: z,
		PAA:  paa,
		Key:  sortable.Interleave(sax.FromPAA(paa, c.Bits)),
	}
}

// WithWindow returns a copy of q restricted to the temporal window
// [minTS, maxTS] (inclusive).
func (q Query) WithWindow(minTS, maxTS int64) Query {
	q.MinTS, q.MaxTS = minTS, maxTS
	q.Windowed = true
	return q
}

// InWindow reports whether a timestamp satisfies the query's window.
func (q Query) InWindow(ts int64) bool {
	return !q.Windowed || (ts >= q.MinTS && ts <= q.MaxTS)
}

// Result is one nearest-neighbor answer.
type Result struct {
	ID   int64   // series ID in the raw store
	TS   int64   // ingestion timestamp
	Dist float64 // true Euclidean distance (z-normalized)
}

// worse reports whether a is strictly worse than b under the collector's
// total order: farther first, with the larger ID losing ties. Ordering
// results totally (rather than by distance alone) is what makes collection
// order-independent, which the parallel query engine relies on: per-worker
// collectors merged in any order yield the same k results as one serial
// collector fed the same candidates.
func worse(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// Collector maintains the k best results seen so far (a max-heap on
// (distance, ID)), deduplicating by series ID.
//
// The collector's final contents are the k smallest (Dist, ID) pairs among
// every result offered, independent of the order they were offered in —
// the determinism guarantee behind parallel search.
type Collector struct {
	k     int
	items resultHeap
	seen  map[int64]bool
}

// NewCollector creates a collector for the k nearest neighbors.
func NewCollector(k int) *Collector {
	if k < 1 {
		k = 1
	}
	return &Collector{k: k, seen: make(map[int64]bool)}
}

// Add offers a candidate. It returns true if the candidate entered the
// current top-k.
func (c *Collector) Add(r Result) bool {
	if c.seen[r.ID] {
		return false
	}
	if len(c.items) < c.k {
		c.seen[r.ID] = true
		heap.Push(&c.items, r)
		return true
	}
	if !worse(c.items[0], r) {
		return false
	}
	c.seen[r.ID] = true
	delete(c.seen, c.items[0].ID)
	c.items[0] = r
	heap.Fix(&c.items, 0)
	return true
}

// Skip reports whether a candidate whose iSAX lower bound is lb cannot
// change the collected results and may be skipped. The comparison is strict:
// a candidate whose true distance exactly equals the current k-th distance
// can still enter on an ID tie-break, so only bounds strictly beyond the
// k-th distance are prunable. Using Skip (rather than comparing against
// Worst directly) is what keeps pruning consistent with the collector's
// total order, and therefore keeps parallel and serial search identical.
func (c *Collector) Skip(lb float64) bool {
	return len(c.items) >= c.k && lb > c.items[0].Dist
}

// Clone returns a new collector with the same k and the same current
// results. The parallel engine seeds one clone per worker so every worker
// prunes with the bound established by the approximate phase.
func (c *Collector) Clone() *Collector {
	n := NewCollector(c.k)
	for _, r := range c.items {
		n.Add(r)
	}
	return n
}

// Merge folds another collector's results into c, deduplicating by ID.
// Because collection is order-independent, merging per-worker collectors in
// any order produces the same final top-k as a single serial collector.
func (c *Collector) Merge(o *Collector) {
	for _, r := range o.items {
		c.Add(r)
	}
}

// Worst returns the current pruning bound: the distance of the k-th best
// result, or +Inf while fewer than k results are held. Any candidate whose
// lower bound meets or exceeds Worst can be skipped.
func (c *Collector) Worst() float64 {
	if len(c.items) < c.k {
		return math.Inf(1)
	}
	return c.items[0].Dist
}

// Full reports whether k results have been collected.
func (c *Collector) Full() bool { return len(c.items) >= c.k }

// Results returns the collected results sorted by ascending distance.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return worse(h[i], h[j]) } // max-heap on (Dist, ID)
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*resultHeap)(nil)

// Index is the common interface of every data series index in the repo.
type Index interface {
	// Name identifies the index variant (e.g. "CTree", "CLSMFull").
	Name() string
	// Count returns the number of indexed series.
	Count() int64
	// ApproxSearch returns up to k likely near neighbors by navigating
	// directly to the query's summarization region. No distance guarantee.
	ApproxSearch(q Query, k int) ([]Result, error)
	// ExactSearch returns the true k nearest neighbors.
	ExactSearch(q Query, k int) ([]Result, error)
}

// Inserter is implemented by indexes that accept incremental inserts
// (CLSM natively; CTree via leaf slack; ADS+ top-down).
type Inserter interface {
	Insert(s series.Series, ts int64) error
}

// RangeSearcher is implemented by indexes that answer range (epsilon)
// queries: every series within Euclidean distance eps of the query.
type RangeSearcher interface {
	RangeSearch(q Query, eps float64) ([]Result, error)
}

// RangeCollector accumulates all results within eps, sorted by distance on
// Results(). Unlike Collector there is no k; the pruning bound is eps
// itself.
type RangeCollector struct {
	eps   float64
	items []Result
	seen  map[int64]bool
}

// NewRangeCollector creates a collector for results within eps.
func NewRangeCollector(eps float64) *RangeCollector {
	return &RangeCollector{eps: eps, seen: make(map[int64]bool)}
}

// Bound returns the pruning bound: candidates with lower bounds >= Bound
// cannot qualify.
func (c *RangeCollector) Bound() float64 { return c.eps }

// Add offers a candidate; it is kept when within eps and not a duplicate.
func (c *RangeCollector) Add(r Result) bool {
	if r.Dist > c.eps || c.seen[r.ID] {
		return false
	}
	c.seen[r.ID] = true
	c.items = append(c.items, r)
	return true
}

// Clone returns a new empty collector with the same epsilon. Unlike
// Collector.Clone it carries no seed results: range collection prunes with
// the static eps bound, so workers gain nothing from seeding.
func (c *RangeCollector) Clone() *RangeCollector { return NewRangeCollector(c.eps) }

// Merge folds another range collector's results into c, deduplicating by
// ID. The collected set — every candidate within eps — does not depend on
// order, so per-worker range collectors merge deterministically.
func (c *RangeCollector) Merge(o *RangeCollector) {
	for _, r := range o.items {
		c.Add(r)
	}
}

// Results returns all collected results sorted by ascending distance.
func (c *RangeCollector) Results() []Result {
	out := make([]Result, len(c.items))
	copy(out, c.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EvalRangeCandidates verifies in-memory candidates against a range
// collector, pruning by the epsilon bound.
func EvalRangeCandidates(q Query, entries []record.Entry, cfg Config, raw series.RawStore, col *RangeCollector) error {
	for _, e := range entries {
		if cfg.MinDistKey(q.PAA, e.Key) > col.Bound() {
			continue
		}
		d, err := TrueDist(q, e, raw, col.Bound())
		if err != nil {
			return err
		}
		col.Add(Result{ID: e.ID, TS: e.TS, Dist: d})
	}
	return nil
}

// EvalCandidates evaluates a batch of already-in-memory candidate entries
// against the collector in ascending lower-bound order: the most promising
// candidate is verified first, collapsing the pruning bound so the rest are
// skipped without paying their (possibly random) raw fetches. This is the
// standard candidate-ordering optimization of data series indexes; every
// leaf/page evaluation in the repository funnels through it. It returns the
// number of candidates considered.
func EvalCandidates(q Query, entries []record.Entry, cfg Config, raw series.RawStore, col *Collector) (int, error) {
	type cand struct {
		e  record.Entry
		lb float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		cands = append(cands, cand{e: e, lb: cfg.MinDistKey(q.PAA, e.Key)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
	for _, c := range cands {
		if col.Skip(c.lb) {
			break // all remaining candidates have larger lower bounds
		}
		d, err := TrueDist(q, c.e, raw, col.Worst())
		if err != nil {
			return len(cands), err
		}
		col.Add(Result{ID: c.e.ID, TS: c.e.TS, Dist: d})
	}
	return len(cands), nil
}

// TrueDist computes the distance between a prepared query and a candidate
// entry, using the inline payload when materialized or fetching from raw
// otherwise. The payload/raw series must already be z-normalized. Because
// the parallel query engine evaluates candidates on worker goroutines, raw
// stores must be safe for concurrent Get calls.
func TrueDist(q Query, e record.Entry, raw series.RawStore, bound float64) (float64, error) {
	var s series.Series
	if e.Payload != nil {
		s = e.Payload
	} else {
		if raw == nil {
			return 0, fmt.Errorf("index: non-materialized entry %d but no raw store", e.ID)
		}
		var err error
		s, err = raw.Get(int(e.ID))
		if err != nil {
			return 0, err
		}
	}
	sq := q.Norm.SqDistEarlyAbandon(s, bound*bound)
	return math.Sqrt(sq), nil
}
