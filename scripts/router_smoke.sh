#!/usr/bin/env bash
# Router smoke test: bring up two coconut-server index nodes with
# replicated cluster builds, front them with a coconut-router, and require
# byte-identical answers to a single-node baseline via coconut-loadgen's
# identity phase. This is the end-to-end proof the distributed tier makes
# no answer different — CI runs it on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_N1=18741
PORT_N2=18742
PORT_BASE=18739
PORT_ROUTER=18740
N=2000
LEN=64
SEED=7

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$WORK/coconut-server" ./cmd/coconut-server
go build -o "$WORK/coconut-router" ./cmd/coconut-router
go build -o "$WORK/coconut-loadgen" ./cmd/coconut-loadgen

echo "== starting nodes"
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_N1" >"$WORK/n1.log" 2>&1 & PIDS+=($!)
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_N2" >"$WORK/n2.log" 2>&1 & PIDS+=($!)
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_BASE" >"$WORK/base.log" 2>&1 & PIDS+=($!)

wait_http() {
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$1/api/health" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server on port $1 never came up" >&2
    return 1
}
wait_http "$PORT_N1"; wait_http "$PORT_N2"; wait_http "$PORT_BASE"

dataset() { # port
    curl -sf "http://127.0.0.1:$1/api/datasets" \
        -d "{\"kind\":\"randomwalk\",\"n\":$N,\"len\":$LEN,\"seed\":$SEED}" >/dev/null
}

echo "== loading the same dataset on every server"
dataset "$PORT_N1"; dataset "$PORT_N2"; dataset "$PORT_BASE"

build_id() { # extracts "id":"..." from a build response
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

echo "== building indexes (cluster builds on nodes, plain on baseline)"
# 4 logical shards, both nodes hold all of them: 2-way replication.
B1=$(curl -sf "http://127.0.0.1:$PORT_N1/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull","cluster_shards":4,"node_shards":[0,1,2,3]}' | build_id)
B2=$(curl -sf "http://127.0.0.1:$PORT_N2/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull","cluster_shards":4,"node_shards":[0,1,2,3]}' | build_id)
BBASE=$(curl -sf "http://127.0.0.1:$PORT_BASE/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull"}' | build_id)
[ -n "$B1" ] && [ -n "$B2" ] && [ -n "$BBASE" ] || { echo "build failed" >&2; exit 1; }

cat > "$WORK/topo.json" <<EOF
{"shards": 4, "series_len": $LEN, "nodes": [
  {"name": "n1", "url": "http://127.0.0.1:$PORT_N1", "build": "$B1", "shards": [0,1,2,3]},
  {"name": "n2", "url": "http://127.0.0.1:$PORT_N2", "build": "$B2", "shards": [0,1,2,3]}
]}
EOF

echo "== starting router"
"$WORK/coconut-router" -addr "127.0.0.1:$PORT_ROUTER" -topology "$WORK/topo.json" \
    -hedge-after 100ms >"$WORK/router.log" 2>&1 & PIDS+=($!)
wait_http "$PORT_ROUTER"

echo "== identity + load through the router (refuses numbers on any mismatch)"
"$WORK/coconut-loadgen" \
    -target "http://127.0.0.1:$PORT_ROUTER" \
    -baseline "http://127.0.0.1:$PORT_BASE" -baseline-build "$BBASE" \
    -identity 25 -k 5 -rate 40 -duration 3s

echo "== drain/undrain round-trip"
curl -sf "http://127.0.0.1:$PORT_ROUTER/api/cluster/drain" -d '{"node":"n2"}' >/dev/null
"$WORK/coconut-loadgen" \
    -target "http://127.0.0.1:$PORT_ROUTER" \
    -baseline "http://127.0.0.1:$PORT_BASE" -baseline-build "$BBASE" \
    -identity 10 -k 5 -rate 20 -duration 1s
curl -sf "http://127.0.0.1:$PORT_ROUTER/api/cluster/drain" -d '{"node":"n2","undrain":true}' >/dev/null

echo "== router smoke OK"
