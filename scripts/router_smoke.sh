#!/usr/bin/env bash
# Router smoke test: bring up two coconut-server index nodes with
# replicated cluster builds, front them with a coconut-router, and require
# byte-identical answers to a single-node baseline via coconut-loadgen's
# identity phase. This is the end-to-end proof the distributed tier makes
# no answer different — CI runs it on every PR.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_N1=18741
PORT_N2=18742
PORT_BASE=18739
PORT_ROUTER=18740
N=2000
LEN=64
SEED=7

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$WORK/coconut-server" ./cmd/coconut-server
go build -o "$WORK/coconut-router" ./cmd/coconut-router
go build -o "$WORK/coconut-loadgen" ./cmd/coconut-loadgen

echo "== starting nodes"
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_N1" >"$WORK/n1.log" 2>&1 & PIDS+=($!)
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_N2" >"$WORK/n2.log" 2>&1 & PIDS+=($!)
"$WORK/coconut-server" -addr "127.0.0.1:$PORT_BASE" >"$WORK/base.log" 2>&1 & PIDS+=($!)

wait_http() {
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$1/api/health" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server on port $1 never came up" >&2
    return 1
}
wait_http "$PORT_N1"; wait_http "$PORT_N2"; wait_http "$PORT_BASE"

dataset() { # port
    curl -sf "http://127.0.0.1:$1/api/datasets" \
        -d "{\"kind\":\"randomwalk\",\"n\":$N,\"len\":$LEN,\"seed\":$SEED}" >/dev/null
}

echo "== loading the same dataset on every server"
dataset "$PORT_N1"; dataset "$PORT_N2"; dataset "$PORT_BASE"

build_id() { # extracts "id":"..." from a build response
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

echo "== building indexes (cluster builds on nodes, plain on baseline)"
# 4 logical shards, both nodes hold all of them: 2-way replication.
B1=$(curl -sf "http://127.0.0.1:$PORT_N1/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull","cluster_shards":4,"node_shards":[0,1,2,3]}' | build_id)
B2=$(curl -sf "http://127.0.0.1:$PORT_N2/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull","cluster_shards":4,"node_shards":[0,1,2,3]}' | build_id)
BBASE=$(curl -sf "http://127.0.0.1:$PORT_BASE/api/build" \
    -d '{"dataset":"ds-1","variant":"CTreeFull"}' | build_id)
[ -n "$B1" ] && [ -n "$B2" ] && [ -n "$BBASE" ] || { echo "build failed" >&2; exit 1; }

cat > "$WORK/topo.json" <<EOF
{"shards": 4, "series_len": $LEN, "nodes": [
  {"name": "n1", "url": "http://127.0.0.1:$PORT_N1", "build": "$B1", "shards": [0,1,2,3]},
  {"name": "n2", "url": "http://127.0.0.1:$PORT_N2", "build": "$B2", "shards": [0,1,2,3]}
]}
EOF

echo "== starting router"
"$WORK/coconut-router" -addr "127.0.0.1:$PORT_ROUTER" -topology "$WORK/topo.json" \
    -hedge-after 100ms >"$WORK/router.log" 2>&1 & PIDS+=($!)
wait_http "$PORT_ROUTER"

echo "== identity + load through the router (refuses numbers on any mismatch)"
"$WORK/coconut-loadgen" \
    -target "http://127.0.0.1:$PORT_ROUTER" \
    -baseline "http://127.0.0.1:$PORT_BASE" -baseline-build "$BBASE" \
    -identity 25 -k 5 -rate 40 -duration 3s -json "$WORK/load.json"
grep -q '"p50"' "$WORK/load.json" || { echo "loadgen -json summary missing quantiles" >&2; exit 1; }

echo "== metrics exposition (node + router)"
metric() { # port series-prefix
    curl -sf "http://127.0.0.1:$1/metrics" | grep "^$2" || {
        echo "port $1: /metrics missing series $2" >&2
        curl -sf "http://127.0.0.1:$1/metrics" | head -40 >&2
        exit 1
    }
}
# Node: the load phase ran exact queries against n1/n2; at least the
# query counter, latency histogram, and per-build gauges must be present.
metric "$PORT_N1" 'coconut_queries_total{mode="exact"}' >/dev/null
metric "$PORT_N1" 'coconut_query_latency_seconds_count{mode="exact"}' >/dev/null
metric "$PORT_N1" "coconut_builds " >/dev/null
metric "$PORT_N1" 'coconut_build_series{' >/dev/null
# Router: fan-out counters and per-node health gauges.
metric "$PORT_ROUTER" 'coconut_router_queries_total{mode="exact"}' >/dev/null
metric "$PORT_ROUTER" 'coconut_router_node_calls_total' >/dev/null
metric "$PORT_ROUTER" 'coconut_router_node_healthy{node="n1"} 1' >/dev/null
metric "$PORT_ROUTER" 'coconut_router_node_healthy{node="n2"} 1' >/dev/null
# Consistency: router exact-query count must equal the node-side total
# (every routed exact query lands on exactly one replica per shard set,
# and no client bypassed the router on n1/n2 in this script).
router_q=$(metric "$PORT_ROUTER" 'coconut_router_queries_total{mode="exact"}' | awk '{print $2}')
n1_q=$(metric "$PORT_N1" 'coconut_queries_total{mode="exact"}' | awk '{print $2}')
n2_q=$(metric "$PORT_N2" 'coconut_queries_total{mode="exact"}' | awk '{print $2}')
if [ "$((n1_q + n2_q))" -lt "$router_q" ]; then
    echo "metrics inconsistent: router served $router_q exact queries but nodes only saw $n1_q + $n2_q" >&2
    exit 1
fi
echo "   router exact queries: $router_q (nodes saw $n1_q + $n2_q)"

echo "== traced query returns a structured trace"
SERIES=$(printf '0,%.0s' $(seq 1 "$LEN")); SERIES="[${SERIES%,}]"
TRACE=$(curl -sf "http://127.0.0.1:$PORT_ROUTER/api/query?trace=1" \
    -d "{\"series\":$SERIES,\"k\":3,\"exact\":true}")
echo "$TRACE" | grep -q '"router_trace"' || { echo "router ?trace=1 returned no router_trace: $TRACE" >&2; exit 1; }
NTRACE=$(curl -sf "http://127.0.0.1:$PORT_N1/api/query?trace=1" \
    -d "{\"build\":\"$B1\",\"series\":$SERIES,\"k\":3,\"exact\":true}")
echo "$NTRACE" | grep -q '"trace"' || { echo "node ?trace=1 returned no trace: $NTRACE" >&2; exit 1; }

echo "== drain/undrain round-trip"
curl -sf "http://127.0.0.1:$PORT_ROUTER/api/cluster/drain" -d '{"node":"n2"}' >/dev/null
"$WORK/coconut-loadgen" \
    -target "http://127.0.0.1:$PORT_ROUTER" \
    -baseline "http://127.0.0.1:$PORT_BASE" -baseline-build "$BBASE" \
    -identity 10 -k 5 -rate 20 -duration 1s
curl -sf "http://127.0.0.1:$PORT_ROUTER/api/cluster/drain" -d '{"node":"n2","undrain":true}' >/dev/null

echo "== router smoke OK"
