package coconut

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/clsm"
	"repro/internal/compact"
	"repro/internal/fsx"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Sharded is a horizontally partitioned index: N independent shards (each a
// Tree or LSM on its own simulated disk) holding hash-assigned partitions
// of the ingested series. Searches fan probes across the shards on a
// bounded worker pool and merge per-shard answers through the deterministic
// squared-space collectors, so Search and SearchRange return results
// byte-identical to the equivalent unsharded index at every shard count and
// parallelism setting; see internal/shard for the argument.
//
// Shards help when the machine has cores to spare for one query (each
// shard's scan runs on its own disk, with no shared pruning state to
// contend on), when build time matters (shards bulk-load concurrently), and
// as the unit of horizontal scale-out: the hash placement is a pure
// function of (series ID, shard count), so a partition computed here maps
// directly onto N machines. A single shard (ShardCount 1) behaves exactly
// like the unsharded index plus one ID translation.
type Sharded struct {
	sh      *shard.Sharded
	kind    string // "tree" or "lsm"
	trees   []*Tree
	lsms    []*LSM
	cache   *bufpool.Cache // shared across every shard's disk; nil uncached
	planner *index.Planner // ONE planner (and plan cache) shared by every shard
	cfg     index.Config
	hostFS  fsx.FS // filesystem for the snapshot manifest; nil means the OS

	insertMu sync.Mutex         // serializes global ID assignment across shards
	sched    *compact.Scheduler // ONE background-merge pool shared by every shard; nil inline
	closed   atomic.Bool
}

// shardKindTree and shardKindLSM tag snapshots and drive facade dispatch.
const (
	shardKindTree = "tree"
	shardKindLSM  = "lsm"
)

// innerOptions returns the per-shard build options: shards run their
// internal scans serially because the sharded layer owns the fan-out, and
// caching is owned by the shared cache the sharded facade attaches (one
// budget for the whole index, not CacheBytes per shard). Likewise the
// WAL, storage root, and compaction scheduler are owned at the sharded
// level (per-shard log and page-file directories, one shared worker
// pool), so the per-shard knobs clear; callers re-point StorageDir at
// the shard's own subdirectory via shardDir.
func innerOptions(opts Options) Options {
	opts.Parallelism = 1
	opts.CacheBytes = 0
	opts.WALDir = ""
	opts.StorageDir = ""
	opts.CompactionWorkers = 0
	// The plan cache is likewise owned at the sharded level: one cache for
	// the whole index, passed alongside the shared buffer cache, so shards
	// never allocate private ones that would immediately be replaced.
	opts.PlanCacheSize = 0
	return opts
}

// shardDir names shard i's directory under a sharded root (the same
// shard-%03d layout for WAL roots and file-backed storage roots).
func shardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// sharedCache builds the one cache every shard's disk attaches to, sized
// by Options.CacheBytes over the whole sharded index; nil when uncached.
func sharedCache(opts Options) *bufpool.Cache {
	if opts.CacheBytes <= 0 {
		return nil
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	return bufpool.NewCache(opts.CacheBytes, pageSize)
}

// BuildShardedTree bulk-loads a sharded CoconutTree: series are
// hash-partitioned across n shards (IDs are their positions in data, as in
// BuildTree) and the shards bulk-load concurrently on a worker pool bounded
// by opts.Parallelism, each on its own simulated disk.
func BuildShardedTree(data [][]float64, n int, opts Options) (*Sharded, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("coconut: shard count must be >= 1, got %d", n)
	}
	part := shard.Partition(int64(len(data)), n)
	trees := make([]*Tree, n)
	cache := sharedCache(opts)
	planner := opts.newPlanner()
	pool := parallel.New(opts.Parallelism)
	err = pool.ForEach(n, func(_, i int) error {
		sub := make([][]float64, len(part[i]))
		for j, gid := range part[i] {
			sub[j] = data[gid]
		}
		inner := innerOptions(opts)
		if opts.StorageDir != "" {
			inner.StorageDir = shardDir(opts.StorageDir, i)
		}
		t, berr := buildTreeCache(sub, inner, cache, planner)
		if berr != nil {
			return fmt.Errorf("coconut: building shard %d: %w", i, berr)
		}
		trees[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	sh, err := assembleShardedTrees(trees, part, cfg, opts.Parallelism, cache, planner)
	if err != nil {
		return nil, err
	}
	sh.hostFS = opts.FS
	return sh, nil
}

// assembleShardedTrees wires built (or reopened) per-shard trees into one
// sharded index, re-pointing every shard at the single shared planner so
// plan-cache entries and counters aggregate across the whole index.
func assembleShardedTrees(trees []*Tree, part [][]int64, cfg index.Config, parallelism int, cache *bufpool.Cache, planner *index.Planner) (*Sharded, error) {
	shards := make([]shard.Shard, len(trees))
	for i, t := range trees {
		t.planner = planner
		t.tree.SetPlanner(planner)
		shards[i] = shard.Shard{Index: t.tree, Disk: t.disk, IDs: part[i]}
		if t.pool != nil {
			shards[i].Reader = t.pool
		}
	}
	sh, err := shard.New(cfg, shards, parallelism)
	if err != nil {
		return nil, err
	}
	sh.SetPlanner(planner)
	return &Sharded{sh: sh, kind: shardKindTree, trees: trees, cache: cache, planner: planner, cfg: cfg}, nil
}

// NewShardedLSM creates an empty sharded CoconutLSM with n shards, each a
// write-optimized LSM on its own disk. Inserted series route to their
// hash-assigned shard; IDs are assigned in insertion order, exactly as in
// an unsharded LSM.
//
// With opts.WALDir set, each shard keeps its own write-ahead log in a
// subdirectory (shard-000, shard-001, ...), and reopening over a directory
// that already holds logs replays every shard's tail — the global ID space
// is rebuilt from the deterministic hash placement, so recovery reproduces
// exactly the pre-crash sharded index. The logs must be mutually
// consistent for that rebuild: with DurabilityBatched a crash may lose
// one shard's un-synced group-commit window while later inserts survive
// in other shards, in which case recovery refuses (loudly) rather than
// mislabel IDs — use DurabilitySync, or sync via Close, when sharded
// crash recovery must cover every acknowledged insert. With
// opts.CompactionWorkers set, one scheduler of that many workers runs
// every shard's background merges, bounding the whole deployment's merge
// I/O, not each shard's.
func NewShardedLSM(n int, opts Options) (*Sharded, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("coconut: shard count must be >= 1, got %d", n)
	}
	var sched *compact.Scheduler
	if opts.CompactionWorkers > 0 {
		sched = compact.NewScheduler(opts.CompactionWorkers)
	}
	lsms := make([]*LSM, n)
	cache := sharedCache(opts)
	planner := opts.newPlanner()
	for i := range lsms {
		walDir := ""
		if opts.WALDir != "" {
			walDir = shardDir(opts.WALDir, i)
		}
		inner := innerOptions(opts)
		inner.Durability = opts.Durability
		if opts.StorageDir != "" {
			inner.StorageDir = shardDir(opts.StorageDir, i)
		}
		l, lerr := newLSMFull(inner, cache, sched, planner, walDir)
		if lerr != nil {
			for _, built := range lsms[:i] {
				built.Close()
			}
			if sched != nil {
				sched.Close()
			}
			return nil, lerr
		}
		lsms[i] = l
	}
	// Rebuild the global ID space. Fresh logs leave every shard empty and
	// the partition trivially empty; recovered logs restore per-shard
	// counts whose hash partition must match them shard for shard. A
	// mismatch means the logs are mutually inconsistent — a wrong shard
	// count, or a crash under batched durability that lost one shard's
	// un-synced group-commit window while a later-ID insert survived in
	// another shard — and the only safe answer is to refuse: guessing a
	// placement would silently mislabel every ID after the gap. Use
	// DurabilitySync (or Close, which syncs every shard) when sharded
	// recovery must be exact to the last acknowledged insert.
	closeAll := func() {
		for _, l := range lsms {
			l.Close()
		}
		if sched != nil {
			sched.Close()
		}
	}
	var total int64
	for _, l := range lsms {
		total += int64(l.Count())
	}
	part := shard.Partition(total, n)
	for i, l := range lsms {
		if len(part[i]) != l.Count() {
			closeAll()
			return nil, fmt.Errorf("coconut: recovered shard %d holds %d series but the hash placement of %d total assigns it %d (wrong shard count, or a crash lost part of a batched group-commit window — see NewShardedLSM)",
				i, l.Count(), total, len(part[i]))
		}
	}
	sh, err := assembleShardedLSMs(lsms, part, cfg, opts.Parallelism, cache, planner)
	if err != nil {
		closeAll()
		return nil, err
	}
	sh.sched = sched
	sh.hostFS = opts.FS
	return sh, nil
}

// assembleShardedLSMs mirrors assembleShardedTrees for LSM shards, sharing
// one planner across every shard.
func assembleShardedLSMs(lsms []*LSM, part [][]int64, cfg index.Config, parallelism int, cache *bufpool.Cache, planner *index.Planner) (*Sharded, error) {
	shards := make([]shard.Shard, len(lsms))
	for i, l := range lsms {
		l.planner = planner
		l.lsm.SetPlanner(planner)
		shards[i] = shard.Shard{Index: l.lsm, Disk: l.disk, IDs: part[i]}
		if l.pool != nil {
			shards[i].Reader = l.pool
		}
	}
	sh, err := shard.New(cfg, shards, parallelism)
	if err != nil {
		return nil, err
	}
	sh.SetPlanner(planner)
	return &Sharded{sh: sh, kind: shardKindLSM, lsms: lsms, cache: cache, planner: planner, cfg: cfg}, nil
}

// Kind reports the shard index variant: "tree" or "lsm".
func (s *Sharded) Kind() string { return s.kind }

// Count returns the total number of indexed series across all shards.
func (s *Sharded) Count() int { return int(s.sh.Count()) }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return s.sh.NumShards() }

// SetParallelism re-sizes the cross-shard worker pool (n <= 0 selects
// GOMAXPROCS; 1 probes shards serially). Answers are identical at every
// setting. Call only while no search is in flight.
func (s *Sharded) SetParallelism(n int) { s.sh.SetParallelism(n) }

// Insert adds one series with a timestamp, routing it to its hash-assigned
// shard. The facade keeps the shard's raw series mirror in sync, so
// non-materialized shards keep answering searches.
func (s *Sharded) Insert(ser []float64, ts int64) error {
	if len(ser) != s.cfg.SeriesLen {
		return fmt.Errorf("coconut: series length %d, want %d", len(ser), s.cfg.SeriesLen)
	}
	s.insertMu.Lock()
	defer s.insertMu.Unlock()
	si := shard.Of(s.sh.Count(), s.sh.NumShards())
	// The facade shard insert (Tree.Insert / LSM.Insert) appends to the
	// shard's raw store and its internal index; the sharded layer only has
	// to record the new global ID against the shard.
	var err error
	switch s.kind {
	case shardKindTree:
		err = s.trees[si].Insert(ser, ts)
	default:
		err = s.lsms[si].Insert(ser, ts)
	}
	if err != nil {
		return err
	}
	s.sh.NoteInsert(si)
	return nil
}

// Flush forces every LSM shard's in-memory buffer into a sorted on-disk
// run. On a tree-kind index it is a no-op.
func (s *Sharded) Flush() error {
	for _, l := range s.lsms {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce waits until no shard has background-merge work pending or in
// flight (a no-op without CompactionWorkers).
func (s *Sharded) Quiesce() error {
	for _, l := range s.lsms {
		if err := l.Quiesce(); err != nil {
			return err
		}
	}
	return nil
}

// CompactionStats returns each LSM shard's ingest/compaction state, in
// shard order (nil for tree-kind indexes).
func (s *Sharded) CompactionStats() []clsm.CompactionStats {
	if s.kind != shardKindLSM {
		return nil
	}
	out := make([]clsm.CompactionStats, len(s.lsms))
	for i, l := range s.lsms {
		out[i] = l.CompactionStats()
	}
	return out
}

// WALStats returns each shard's log accounting; ok is false when the index
// was created without a WAL.
func (s *Sharded) WALStats() (out []wal.Stats, ok bool) {
	for _, l := range s.lsms {
		st, has := l.WALStats()
		if !has {
			return nil, false
		}
		out = append(out, st)
	}
	return out, len(out) > 0
}

// Close shuts down every shard (waiting out background merges, syncing and
// closing per-shard WALs, releasing pools) and then the shared compaction
// scheduler. Idempotent; call with no insert in flight.
func (s *Sharded) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	for _, l := range s.lsms {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	for _, t := range s.trees {
		if cerr := t.Close(); err == nil {
			err = cerr
		}
	}
	if s.sched != nil {
		if cerr := s.sched.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Search returns the exact k nearest neighbors of q, byte-identical to the
// unsharded index's answer: shards scan concurrently and their exact
// per-shard top-k answers merge deterministically.
func (s *Sharded) Search(q []float64, k int) ([]Match, error) {
	rs, err := s.sh.ExactSearch(index.NewQuery(series.Series(q), s.cfg), k)
	return convert(rs), err
}

// SearchApprox probes every shard's approximate path (one or two page reads
// per shard) and merges the best k. No exactness guarantee; results keep
// the approximate contract: up to k deduplicated matches with true
// distances, ordered by (distance, ID).
func (s *Sharded) SearchApprox(q []float64, k int) ([]Match, error) {
	rs, err := s.sh.ApproxSearch(index.NewQuery(series.Series(q), s.cfg), k)
	return convert(rs), err
}

// SearchRange returns every indexed series within Euclidean distance eps of
// q, sorted by distance — byte-identical to the unsharded answer.
func (s *Sharded) SearchRange(q []float64, eps float64) ([]Match, error) {
	rs, err := s.sh.RangeSearch(index.NewQuery(series.Series(q), s.cfg), eps)
	return convert(rs), err
}

// SearchWindow returns the exact k nearest neighbors among entries whose
// timestamp lies in [minTS, maxTS], across all shards.
func (s *Sharded) SearchWindow(q []float64, k int, minTS, maxTS int64) ([]Match, error) {
	pq := index.NewQuery(series.Series(q), s.cfg).WithWindow(minTS, maxTS)
	rs, err := s.sh.ExactSearch(pq, k)
	return convert(rs), err
}

// SearchBatch answers one exact k-NN query per element of qs. The batch
// pipelines through pooled per-worker search contexts — one context per
// worker slot for the whole batch, refilled per query, its scratch buffers
// reused across queries — and each query probes all shards with that single
// context. out[i] is byte-identical to Search(qs[i], k); batching changes
// throughput, never answers.
func (s *Sharded) SearchBatch(qs [][]float64, k int) ([][]Match, error) {
	iqs, err := s.prepareBatch(qs)
	if err != nil {
		return nil, err
	}
	rss, err := s.sh.ExactSearchBatch(iqs, k)
	if err != nil {
		return nil, err
	}
	return convertBatch(rss), nil
}

func (s *Sharded) prepareBatch(qs [][]float64) ([]index.Query, error) {
	return prepareQueries(qs, s.cfg)
}

// Stats returns the I/O accounting aggregated across every shard's disk,
// including the shared buffer pool's hit/miss counters when one is
// configured (CacheBytes > 0 — one pool serves every shard), plus the
// shared query planner's skip and plan-cache counters.
func (s *Sharded) Stats() Stats {
	return toStats(s.sh.IOStats(), s.sh.TotalPages()).withPlanner(s.planner)
}

// ShardStats returns each shard's I/O accounting, in shard order (cache
// counters are per shard: each shard's disk has its own view of the shared
// pool).
func (s *Sharded) ShardStats() []Stats {
	out := make([]Stats, s.sh.NumShards())
	for i, shd := range s.sh.Shards() {
		out[i] = toStats(shd.IOStats(), shd.Disk.TotalPages())
	}
	return out
}

// EnableCache installs one shared buffer pool of cacheBytes across every
// shard's disk (useful after OpenSharded, which reopens uncached). A
// no-op if a cache is already attached. Call only while no search is in
// flight.
func (s *Sharded) EnableCache(cacheBytes int64) error {
	if s.cache != nil || cacheBytes <= 0 {
		return nil
	}
	shards := s.sh.Shards()
	cache := bufpool.NewCache(cacheBytes, shards[0].Disk.PageSize())
	for i := range shards {
		pool, err := cache.Attach(shards[i].Disk)
		if err != nil {
			return err
		}
		shards[i].Reader = pool
		switch s.kind {
		case shardKindTree:
			s.trees[i].pool = pool
			s.trees[i].tree.UseReader(pool)
		default:
			s.lsms[i].pool = pool
			s.lsms[i].lsm.UseReader(pool)
		}
	}
	s.cache = cache
	return nil
}

// prepareQueries validates and prepares a batch of raw queries under cfg.
func prepareQueries(qs [][]float64, cfg index.Config) ([]index.Query, error) {
	iqs := make([]index.Query, len(qs))
	for i, q := range qs {
		if len(q) != cfg.SeriesLen {
			return nil, fmt.Errorf("coconut: query %d length %d, want %d", i, len(q), cfg.SeriesLen)
		}
		iqs[i] = index.NewQuery(series.Series(q), cfg)
	}
	return iqs, nil
}

func convertBatch(rss [][]index.Result) [][]Match {
	out := make([][]Match, len(rss))
	for i, rs := range rss {
		out[i] = convert(rs)
	}
	return out
}

// SearchBatch answers one exact k-NN query per element of qs against the
// tree, pipelined over the tree's worker pool: parallelism moves from
// within one scan to across queries, and each worker slot reuses one pooled
// search context (tables refilled per query, scratch persistent) for the
// whole batch. out[i] is byte-identical to Search(qs[i], k).
func (t *Tree) SearchBatch(qs [][]float64, k int) ([][]Match, error) {
	iqs, err := prepareQueries(qs, t.cfg)
	if err != nil {
		return nil, err
	}
	rss, err := t.tree.ExactSearchBatch(iqs, k)
	if err != nil {
		return nil, err
	}
	return convertBatch(rss), nil
}

// SearchBatch answers one exact k-NN query per element of qs against the
// LSM, pipelined over the LSM's worker pool exactly as Tree.SearchBatch.
// out[i] is byte-identical to Search(qs[i], k).
func (l *LSM) SearchBatch(qs [][]float64, k int) ([][]Match, error) {
	iqs, err := prepareQueries(qs, l.cfg)
	if err != nil {
		return nil, err
	}
	rss, err := l.lsm.ExactSearchBatch(iqs, k)
	if err != nil {
		return nil, err
	}
	return convertBatch(rss), nil
}
