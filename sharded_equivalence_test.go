package coconut

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
)

// Equivalence contract of the sharding + batching layer: at every shard
// count, exact and range searches return results byte-identical to the
// unsharded index's, approximate searches keep the approximate contract,
// and every batch path returns exactly what the looped single-query path
// returns. shardCounts deliberately includes 1 (pure ID-translation
// overhead), powers of two, and a prime that leaves shards unevenly sized.
var shardCounts = []int{1, 2, 4, 7}

func genData(t testing.TB, n, length int, seed int64) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		data[i] = gen.RandomWalk(rng, length)
	}
	return data
}

func genQueries(t testing.TB, n, length int, seed int64) [][]float64 {
	return genData(t, n, length, seed)
}

// checkApproxContract verifies what an approximate answer must always
// satisfy, regardless of layout: at most k results, deduplicated,
// ordered by (Dist, ID), each carrying the true z-normalized distance.
func checkApproxContract(t *testing.T, data [][]float64, q []float64, ms []Match, k int) {
	t.Helper()
	if len(ms) > k {
		t.Fatalf("approx returned %d results, want <= %d", len(ms), k)
	}
	seen := map[int]bool{}
	for i, m := range ms {
		if seen[m.ID] {
			t.Fatalf("approx result %d: duplicate ID %d", i, m.ID)
		}
		seen[m.ID] = true
		if i > 0 {
			prev := ms[i-1]
			if m.Dist < prev.Dist || (m.Dist == prev.Dist && m.ID < prev.ID) {
				t.Fatalf("approx results out of (Dist, ID) order at %d: %+v then %+v", i, prev, m)
			}
		}
		if m.ID < 0 || m.ID >= len(data) {
			t.Fatalf("approx result %d: ID %d out of range", i, m.ID)
		}
		want := trueDist(q, data[m.ID])
		if math.Abs(m.Dist-want) > 1e-9 {
			t.Fatalf("approx result %d (ID %d): Dist %v, true distance %v", i, m.ID, m.Dist, want)
		}
	}
}

// trueDist computes the Euclidean distance between the z-normalized forms
// of q and s, independently of any index code path.
func trueDist(q, s []float64) float64 {
	zn := func(x []float64) []float64 {
		var mean, sq float64
		for _, v := range x {
			mean += v
		}
		mean /= float64(len(x))
		for _, v := range x {
			sq += (v - mean) * (v - mean)
		}
		std := math.Sqrt(sq / float64(len(x)))
		out := make([]float64, len(x))
		if std == 0 {
			return out
		}
		for i, v := range x {
			out[i] = (v - mean) / std
		}
		return out
	}
	zq, zs := zn(q), zn(s)
	var acc float64
	for i := range zq {
		d := zq[i] - zs[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

func TestShardedTreeEquivalence(t *testing.T) {
	const n, length, k = 3000, 64, 5
	data := genData(t, n, length, 1)
	queries := genQueries(t, 12, length, 2)
	for _, materialized := range []bool{true, false} {
		opts := Options{SeriesLen: length, Materialized: materialized}
		base, err := BuildTree(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("mat=%v/shards=%d", materialized, shards), func(t *testing.T) {
				sh, err := BuildShardedTree(data, shards, opts)
				if err != nil {
					t.Fatal(err)
				}
				if sh.Count() != base.Count() {
					t.Fatalf("sharded count %d, unsharded %d", sh.Count(), base.Count())
				}
				for qi, q := range queries {
					want, err := base.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sh.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: exact sharded results diverge\n got %+v\nwant %+v", qi, got, want)
					}
					// Range search at an epsilon that includes a few
					// results: the 3rd-nearest distance.
					eps := want[2].Dist
					wantR, err := base.SearchRange(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					gotR, err := sh.SearchRange(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotR, wantR) {
						t.Fatalf("query %d: range sharded results diverge\n got %+v\nwant %+v", qi, gotR, wantR)
					}
					approx, err := sh.SearchApprox(q, k)
					if err != nil {
						t.Fatal(err)
					}
					checkApproxContract(t, data, q, approx, k)
				}
			})
		}
	}
}

func TestShardedLSMEquivalence(t *testing.T) {
	const n, length, k = 2500, 64, 4
	data := genData(t, n, length, 3)
	queries := genQueries(t, 10, length, 4)
	opts := Options{SeriesLen: length, BufferEntries: 256, GrowthFactor: 3}
	base, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := base.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sh, err := NewShardedLSM(shards, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range data {
				if err := sh.Insert(s, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if sh.Count() != base.Count() {
				t.Fatalf("sharded count %d, unsharded %d", sh.Count(), base.Count())
			}
			for qi, q := range queries {
				want, err := base.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: exact sharded results diverge\n got %+v\nwant %+v", qi, got, want)
				}
				// Temporal windows must survive sharding: restrict to the
				// middle half of the ingest timeline.
				wantW, err := base.SearchWindow(q, k, int64(n/4), int64(3*n/4))
				if err != nil {
					t.Fatal(err)
				}
				gotW, err := sh.SearchWindow(q, k, int64(n/4), int64(3*n/4))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotW, wantW) {
					t.Fatalf("query %d: windowed sharded results diverge\n got %+v\nwant %+v", qi, gotW, wantW)
				}
				eps := want[1].Dist
				wantR, err := base.SearchRange(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				gotR, err := sh.SearchRange(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotR, wantR) {
					t.Fatalf("query %d: range sharded results diverge\n got %+v\nwant %+v", qi, gotR, wantR)
				}
				approx, err := sh.SearchApprox(q, k)
				if err != nil {
					t.Fatal(err)
				}
				checkApproxContract(t, data, q, approx, k)
			}
		})
	}
}

// TestSearchBatchEquivalence pins the batch contract on every index that
// has a batch path: SearchBatch(qs, k)[i] is byte-identical to
// Search(qs[i], k).
func TestSearchBatchEquivalence(t *testing.T) {
	const n, length, k = 2000, 64, 3
	data := genData(t, n, length, 5)
	queries := genQueries(t, 16, length, 6)

	type batcher interface {
		Search(q []float64, k int) ([]Match, error)
		SearchBatch(qs [][]float64, k int) ([][]Match, error)
	}
	indexes := map[string]batcher{}

	tree, err := BuildTree(data, Options{SeriesLen: length, Materialized: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	indexes["tree"] = tree

	lsm, err := NewLSM(Options{SeriesLen: length, BufferEntries: 256, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := lsm.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	indexes["lsm"] = lsm

	sharded, err := BuildShardedTree(data, 4, Options{SeriesLen: length, Materialized: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	indexes["sharded"] = sharded

	for name, idx := range indexes {
		t.Run(name, func(t *testing.T) {
			batch, err := idx.SearchBatch(queries, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(queries) {
				t.Fatalf("batch returned %d result sets for %d queries", len(batch), len(queries))
			}
			for i, q := range queries {
				want, err := idx.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batch[i], want) {
					t.Fatalf("query %d: batch diverges from loop\n got %+v\nwant %+v", i, batch[i], want)
				}
			}
			// Empty batches are legal and return no results.
			empty, err := idx.SearchBatch(nil, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(empty) != 0 {
				t.Fatalf("empty batch returned %d result sets", len(empty))
			}
		})
	}
}

// TestShardedPersistence round-trips a sharded snapshot: save as one file
// set, reopen, and require byte-identical answers.
func TestShardedPersistence(t *testing.T) {
	const n, length, k = 1500, 64, 3
	data := genData(t, n, length, 7)
	queries := genQueries(t, 6, length, 8)
	dir := t.TempDir()

	tree, err := BuildShardedTree(data, 3, Options{SeriesLen: length})
	if err != nil {
		t.Fatal(err)
	}
	lsm, err := NewShardedLSM(3, Options{SeriesLen: length, BufferEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := lsm.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for name, sh := range map[string]*Sharded{"tree": tree, "lsm": lsm} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".snap")
			if err := sh.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			re, err := OpenSharded(path)
			if err != nil {
				t.Fatal(err)
			}
			if re.Count() != sh.Count() || re.NumShards() != sh.NumShards() || re.Kind() != sh.Kind() {
				t.Fatalf("reopened: count %d/%d shards %d/%d kind %s/%s",
					re.Count(), sh.Count(), re.NumShards(), sh.NumShards(), re.Kind(), sh.Kind())
			}
			for qi, q := range queries {
				want, err := sh.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := re.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: reopened results diverge\n got %+v\nwant %+v", qi, got, want)
				}
			}
		})
	}
}

// TestShardedStatsAggregate pins that the facade aggregate equals the sum
// of the per-shard stats, and that building actually spread pages across
// more than one disk.
func TestShardedStatsAggregate(t *testing.T) {
	data := genData(t, 1200, 64, 9)
	sh, err := BuildShardedTree(data, 4, Options{SeriesLen: length64, Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	per := sh.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(per))
	}
	var sum Stats
	populated := 0
	for _, st := range per {
		sum.SeqReads += st.SeqReads
		sum.RandReads += st.RandReads
		sum.SeqWrites += st.SeqWrites
		sum.RandWrites += st.RandWrites
		sum.Pages += st.Pages
		if st.Pages > 0 {
			populated++
		}
	}
	sum.Kernel = per[0].Kernel // process-wide selection, not an additive counter
	if got := sh.Stats(); got != sum {
		t.Fatalf("aggregate stats %+v, sum of shards %+v", got, sum)
	}
	if populated < 2 {
		t.Fatalf("only %d of 4 shards hold pages; hash partitioning is not spreading", populated)
	}
}

const length64 = 64

// TestShardedConcurrentSearch hammers one sharded index from many
// goroutines mixing single and batched searches; run under -race this
// pins the concurrency safety of the fan-out and the pooled contexts.
func TestShardedConcurrentSearch(t *testing.T) {
	const n, length, k = 1500, 64, 3
	data := genData(t, n, length, 10)
	queries := genQueries(t, 8, length, 11)
	sh, err := BuildShardedTree(data, 4, Options{SeriesLen: length, Materialized: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Match, len(queries))
	for i, q := range queries {
		if want[i], err = sh.Search(q, k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				if g%2 == 0 {
					for i, q := range queries {
						got, serr := sh.Search(q, k)
						if serr != nil {
							errc <- serr
							return
						}
						if !reflect.DeepEqual(got, want[i]) {
							errc <- fmt.Errorf("goroutine %d query %d: results diverge under concurrency", g, i)
							return
						}
					}
				} else {
					batch, berr := sh.SearchBatch(queries, k)
					if berr != nil {
						errc <- berr
						return
					}
					for i := range queries {
						if !reflect.DeepEqual(batch[i], want[i]) {
							errc <- fmt.Errorf("goroutine %d query %d: batch results diverge under concurrency", g, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
