package coconut_test

import (
	"fmt"
	"log"
	"math/rand"

	coconut "repro"
)

func makeWalks(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

// Build a read-optimized CoconutTree and find a stored series exactly.
func ExampleBuildTree() {
	data := makeWalks(1000, 128, 7)
	tree, err := coconut.BuildTree(data, coconut.Options{SeriesLen: 128, Materialized: true})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	matches, err := tree.Search(data[42], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("id=%d dist=%.1f\n", matches[0].ID, matches[0].Dist)
	// Output: id=42 dist=0.0
}

// Stream data into a write-optimized CoconutLSM and query a recent window.
func ExampleNewLSM() {
	lsm, err := coconut.NewLSM(coconut.Options{SeriesLen: 64, BufferEntries: 100})
	if err != nil {
		log.Fatal(err)
	}
	defer lsm.Close()
	data := makeWalks(500, 64, 9)
	for ts, s := range data {
		if err := lsm.Insert(s, int64(ts)); err != nil {
			log.Fatal(err)
		}
	}
	// Only entries with timestamps in [400, 499] are eligible.
	matches, err := lsm.SearchWindow(data[450], 1, 400, 499)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("id=%d ts=%d dist=%.1f\n", matches[0].ID, matches[0].TS, matches[0].Dist)
	// Output: id=450 ts=450 dist=0.0
}

// Use Bounded Temporal Partitioning for streaming window exploration.
func ExampleNewStream() {
	st, err := coconut.NewStream(coconut.BTP, coconut.Options{SeriesLen: 64, BufferEntries: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	data := makeWalks(1000, 64, 11)
	for ts, s := range data {
		if _, err := st.Ingest(s, int64(ts)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(st.Name(), "partitions bounded:", st.Partitions() < 5)
	// Output: CLSM+BTP partitions bounded: true
}

// Ask the recommender for the demo's streaming scenario.
func ExampleRecommend() {
	rec := coconut.Recommend(coconut.Scenario{
		Streaming:        true,
		ExpectedQueries:  100,
		MemoryBudgetFrac: 0.05,
		SmallWindows:     true,
	})
	fmt.Println(rec.Variant())
	// Output: CLSM+BTP
}
