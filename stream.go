package coconut

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/clsm"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/stream"
)

// SchemeKind selects a streaming exploration scheme.
type SchemeKind string

// Streaming schemes (Section 3 of the demo paper).
const (
	// PP keeps one CLSM index over everything and filters timestamps
	// during search.
	PP SchemeKind = "PP"
	// TP seals a new CTree partition per buffer fill; queries skip
	// partitions outside the window, but partitions accumulate forever.
	TP SchemeKind = "TP"
	// BTP sort-merges time-adjacent partitions of similar size, keeping
	// recent data in small partitions and the partition count bounded.
	BTP SchemeKind = "BTP"
)

// Stream explores continuously arriving data series within temporal
// windows.
type Stream struct {
	scheme  stream.Scheme
	cfg     index.Config
	disk    storage.Backend
	pool    *bufpool.Pool // buffer pool fronting disk; nil when uncached
	planner *index.Planner
	raw     *memStore
}

// NewStream creates a streaming index using the given scheme. BufferEntries
// (default 1024) sets the partition/flush granularity for TP and BTP and
// the write buffer for PP.
func NewStream(kind SchemeKind, opts Options) (*Stream, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	buf := opts.BufferEntries
	if buf == 0 {
		buf = 1024
	}
	raw := &memStore{}
	disk, err := opts.newBackend("")
	if err != nil {
		return nil, err
	}
	st := &Stream{cfg: cfg, disk: disk, planner: opts.newPlanner(), raw: raw}
	var reader storage.PageReader
	if opts.CacheBytes > 0 {
		st.pool = bufpool.New(disk, opts.CacheBytes)
		reader = st.pool
	}
	switch kind {
	case PP:
		base, err := newPPBase(disk, reader, cfg, buf, raw, opts.Parallelism, st.planner)
		if err != nil {
			return nil, err
		}
		st.scheme = stream.NewPP(base, cfg)
	case TP:
		tp, err := stream.NewTP("stream", cfg, stream.CTreeFactory(disk, reader, cfg, raw), buf, raw)
		if err != nil {
			return nil, err
		}
		tp.SetParallelism(opts.Parallelism)
		tp.SetPlanner(st.planner)
		st.scheme = tp
	case BTP:
		btp, err := stream.NewBTP(disk, "stream", cfg, buf, 2, raw)
		if err != nil {
			return nil, err
		}
		btp.SetParallelism(opts.Parallelism)
		btp.UseReader(reader)
		btp.SetPlanner(st.planner)
		st.scheme = btp
	default:
		return nil, fmt.Errorf("coconut: unknown scheme %q (want PP, TP, or BTP)", kind)
	}
	return st, nil
}

// Ingest adds one arriving series with its timestamp, returning its ID.
func (s *Stream) Ingest(ser []float64, ts int64) (int, error) {
	if len(ser) != s.cfg.SeriesLen {
		return 0, fmt.Errorf("coconut: series length %d, want %d", len(ser), s.cfg.SeriesLen)
	}
	s.raw.append(series.Series(ser).ZNormalize())
	id, err := s.scheme.Ingest(series.Series(ser), ts)
	return int(id), err
}

// Seal flushes buffered arrivals into the scheme's on-disk structures.
func (s *Stream) Seal() error { return s.scheme.Seal() }

// SearchWindow returns the exact k nearest neighbors among entries whose
// timestamp lies in [minTS, maxTS].
func (s *Stream) SearchWindow(q []float64, k int, minTS, maxTS int64) ([]Match, error) {
	pq := index.NewQuery(series.Series(q), s.cfg).WithWindow(minTS, maxTS)
	rs, err := s.scheme.ExactSearch(pq, k)
	return convert(rs), err
}

// Search returns the exact k nearest neighbors over the whole history.
func (s *Stream) Search(q []float64, k int) ([]Match, error) {
	rs, err := s.scheme.ExactSearch(index.NewQuery(series.Series(q), s.cfg), k)
	return convert(rs), err
}

// SearchApprox probes the scheme near q's key without exactness
// guarantees, restricted to [minTS, maxTS].
func (s *Stream) SearchApprox(q []float64, k int, minTS, maxTS int64) ([]Match, error) {
	pq := index.NewQuery(series.Series(q), s.cfg).WithWindow(minTS, maxTS)
	rs, err := s.scheme.ApproxSearch(pq, k)
	return convert(rs), err
}

// Count returns the number of ingested series.
func (s *Stream) Count() int { return int(s.scheme.Count()) }

// Partitions returns how many separately-searchable pieces exist: 1 for
// PP, linear in stream length for TP, logarithmic for BTP.
func (s *Stream) Partitions() int { return s.scheme.Partitions() }

// Name reports the scheme and base index, e.g. "CLSM+BTP".
func (s *Stream) Name() string { return s.scheme.Name() }

// Stats returns the I/O accounting of the stream's disk since creation,
// cache counters included when a buffer pool is configured, plus the query
// planner's skip and plan-cache counters.
func (s *Stream) Stats() Stats { return statsWith(s.disk, s.pool).withPlanner(s.planner) }

// Close seals buffered arrivals into the scheme's on-disk structures,
// releases the buffer pool's pages, and closes the storage backend (which,
// on the file-backed backend, fsyncs and closes the page files).
// Idempotent; defer it like any other index handle.
func (s *Stream) Close() error {
	err := s.scheme.Seal()
	if s.pool != nil {
		s.pool.Purge()
	}
	if derr := s.disk.Close(); err == nil {
		err = derr
	}
	return err
}

// newPPBase builds the CLSM index PP wraps.
func newPPBase(disk storage.Backend, reader storage.PageReader, cfg index.Config, buf int, raw series.RawStore, par int, pl *index.Planner) (stream.EntryIndex, error) {
	return clsm.New(clsm.Options{
		Disk:          disk,
		Reader:        reader,
		Name:          "stream",
		Config:        cfg,
		BufferEntries: buf,
		Raw:           raw,
		Parallelism:   par,
		Planner:       pl,
	})
}
