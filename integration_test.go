package coconut

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/workload"
)

// TestAllVariantsAgreeOnExactSearch is the repository's strongest
// integration invariant: every index variant — two layout families, a
// baseline, materialized and not — must return exactly the same k-NN
// answers for the same data and queries. Any divergence means a pruning
// bound, codec, or traversal bug somewhere in the stack.
func TestAllVariantsAgreeOnExactSearch(t *testing.T) {
	cfg := index.Config{SeriesLen: 96, Segments: 12, Bits: 8}
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 1200, Len: 96, FracEvent: 0.05, Seed: 99})
	rng := rand.New(rand.NewSource(990))
	queries := make([]series.Series, 12)
	for i := range queries {
		if i%3 == 0 {
			queries[i] = gen.TemplateQueries(gen.TemplateSupernova, 96, 1, 0.2, rng.Int63())[0]
		} else {
			queries[i] = gen.RandomWalk(rng, 96)
		}
	}

	type answerSet [][]index.Result
	answers := map[string]answerSet{}
	for _, v := range workload.Variants {
		b, err := workload.BuildVariant(v, ds, cfg, workload.BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		var as answerSet
		for _, q := range queries {
			rs, err := b.Index.ExactSearch(index.NewQuery(q, cfg), 5)
			if err != nil {
				t.Fatalf("%s: %v", v, err)
			}
			as = append(as, rs)
		}
		answers[v] = as
	}
	ref := answers["CTree"]
	for _, v := range workload.Variants {
		for qi := range queries {
			got, want := answers[v][qi], ref[qi]
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d results, CTree returned %d", v, qi, len(got), len(want))
			}
			for i := range want {
				// Distances must agree exactly (same arithmetic on the same
				// z-normalized data); IDs may differ only on exact ties.
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Errorf("%s query %d result %d: dist %v, CTree %v",
						v, qi, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// TestRawOnDiskPipeline exercises the non-materialized path with the raw
// series file living on the same accounted disk, as in the experiments.
func TestRawOnDiskPipeline(t *testing.T) {
	cfg := index.Config{SeriesLen: 64, Segments: 8, Bits: 8}
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 500, Len: 64, Seed: 7})
	b, err := workload.BuildVariant("CTree", ds, cfg, workload.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Non-materialized exact search must fetch from the on-disk raw file:
	// random reads appear.
	before := b.Disk.Stats()
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(70)), 64), cfg)
	rs, err := b.Index.ExactSearch(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatal("no result")
	}
	diff := b.Disk.Stats().Sub(before)
	if diff.RandReads == 0 {
		t.Error("non-materialized exact search should fetch from the raw file (random reads)")
	}
	// And the answer matches brute force over z-normalized data.
	best, bestD := -1, math.Inf(1)
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if d := math.Sqrt(q.Norm.SqDist(s.ZNormalize())); d < bestD {
			best, bestD = id, d
		}
	}
	if rs[0].ID != int64(best) || math.Abs(rs[0].Dist-bestD) > 1e-9 {
		t.Fatalf("got %+v, want id %d dist %v", rs[0], best, bestD)
	}
}

// TestScenario1Recall verifies the demo's headline exploration outcome end
// to end: searching a built index with a clean template finds the injected
// events.
func TestScenario1Recall(t *testing.T) {
	cfg := index.Config{SeriesLen: 128, Segments: 16, Bits: 8}
	ds, injected := gen.Astronomy(gen.AstronomyConfig{N: 3000, Len: 128, FracEvent: 0.02, Seed: 11})
	isInjected := map[int64]bool{}
	for _, in := range injected {
		if in.Template == gen.TemplateSupernova {
			isInjected[int64(in.ID)] = true
		}
	}
	if len(isInjected) < 10 {
		t.Skip("too few supernovae injected for a recall check")
	}
	b, err := workload.BuildVariant("CTreeFull", ds, cfg, workload.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := index.NewQuery(gen.TemplateSupernova.Shape(128, 0.3), cfg)
	rs, err := b.Index.ExactSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range rs {
		if isInjected[r.ID] {
			hits++
		}
	}
	// Injected supernovae are ~1% of the collection, so 4+/10 in the top-10
	// is a >40x lift over chance; phase-randomized templates at this length
	// keep some honest confusions in the mix.
	if hits < 4 {
		t.Errorf("only %d/10 top answers are injected supernovae", hits)
	}
}
