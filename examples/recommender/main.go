// Recommender drives the demo's recommender tool across the scenario space
// and prints the advice with its decision-tree rationale, including the two
// scripted moments of the demonstration: the static scenario flipping to a
// materialized index as projected queries grow, and the streaming scenario
// choosing CLSM with BTP.
package main

import (
	"fmt"

	coconut "repro"
)

func main() {
	fmt.Println("--- Scenario 1: static astronomy archive, exploratory use ---")
	fmt.Println(coconut.Recommend(coconut.Scenario{
		Streaming:        false,
		ExpectedQueries:  20,
		MemoryBudgetFrac: 0.1,
	}).String())

	fmt.Println("--- Scenario 1 revisited: the workload grows to thousands of queries ---")
	fmt.Println(coconut.Recommend(coconut.Scenario{
		Streaming:        false,
		ExpectedQueries:  5000,
		MemoryBudgetFrac: 0.1,
	}).String())

	fmt.Println("--- Scenario 2: streaming seismic data, recent-window queries ---")
	fmt.Println(coconut.Recommend(coconut.Scenario{
		Streaming:        true,
		ExpectedQueries:  100,
		MemoryBudgetFrac: 0.05,
		SmallWindows:     true,
	}).String())

	fmt.Println("--- Cloud deployment: storage cost dominates ---")
	fmt.Println(coconut.Recommend(coconut.Scenario{
		Streaming:        false,
		ExpectedQueries:  100000,
		MemoryBudgetFrac: 0.25,
		StorageTight:     true,
	}).String())

	fmt.Println("--- Edge device: 1% memory, occasional appends ---")
	fmt.Println(coconut.Recommend(coconut.Scenario{
		Streaming:        false,
		ExpectedQueries:  50,
		UpdateRate:       0.05,
		MemoryBudgetFrac: 0.01,
	}).String())
}
