// Seismic reproduces the demo's Scenario 2: dynamic streaming data series.
// Batches of synthetic seismometer readings arrive continuously; the goal
// is to find series matching known earthquake patterns within variable-
// sized temporal windows. The example compares the PP and TP baselines to
// the recommender's choice, CLSM with Bounded Temporal Partitioning.
package main

import (
	"fmt"
	"log"

	coconut "repro"
	"repro/internal/gen"
)

func main() {
	const (
		batches   = 60
		batchSize = 200
		length    = 256
	)
	fmt.Println("Scenario 2: dynamic streaming data series (synthetic seismic workload)")

	// Ask the recommender first.
	rec := coconut.Recommend(coconut.Scenario{
		Streaming:        true,
		ExpectedQueries:  100,
		MemoryBudgetFrac: 0.05,
		SmallWindows:     true,
	})
	fmt.Println(rec.String())

	data := gen.Seismic(gen.SeismicConfig{
		Batches: batches, BatchSize: batchSize, Len: length,
		QuakeProb: 0.01, Seed: 11,
	})
	quakes := 0
	for _, b := range data {
		quakes += len(b.Quakes)
	}
	fmt.Printf("stream: %d batches x %d series, %d earthquake bursts injected\n\n", batches, batchSize, quakes)

	// Earthquake template queries over three window widths.
	queries := gen.TemplateQueries(gen.TemplateEarthquake, length, 5, 0.2, 3)
	maxTS := data[len(data)-1].TS

	for _, kind := range []coconut.SchemeKind{coconut.PP, coconut.TP, coconut.BTP} {
		s, err := coconut.NewStream(kind, coconut.Options{SeriesLen: length, BufferEntries: 1024})
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range data {
			for _, ser := range b.Series {
				if _, err := s.Ingest(ser, b.TS); err != nil {
					log.Fatal(err)
				}
			}
		}
		ingest := s.Stats()
		ingestCost := ingest.Cost(10)

		report := fmt.Sprintf("%-10s ingest cost %-8.0f partitions %-4d", s.Name(), ingestCost, s.Partitions())
		for _, frac := range []float64{0.05, 0.25, 1.0} {
			minTS := maxTS - int64(frac*float64(maxTS))
			before := s.Stats()
			var bestDist float64
			for _, q := range queries {
				rs, err := s.SearchWindow(q, 1, minTS, maxTS)
				if err != nil {
					log.Fatal(err)
				}
				if len(rs) > 0 {
					bestDist += rs[0].Dist
				}
			}
			after := s.Stats()
			cost := after.Cost(10) - before.Cost(10)
			report += fmt.Sprintf("  win%3.0f%%: %-7.0f", frac*100, cost/float64(len(queries)))
		}
		fmt.Println(report)
		s.Close()
	}

	fmt.Println("\nexpected shape: CLSM+BTP keeps partitions bounded and small windows cheap;")
	fmt.Println("PP pays the full history at every width; TP accumulates partitions forever.")
}
