// Tuning demonstrates navigating Coconut's read/write trade-offs — the
// "rich indexing design choices" the demo walks users through: the CTree
// leaf fill factor and the CLSM growth factor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	coconut "repro"
)

func walks(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

func main() {
	// Length-64 series keep materialized entries small enough that several
	// fit per page, giving the fill-factor knob fine steps.
	const (
		n      = 10000
		length = 64
	)
	data := walks(n, length, 1)
	inserts := walks(1000, length, 2)
	queries := walks(20, length, 3)

	fmt.Println("CTree fill-factor sweep under an insert-then-query workload:")
	fmt.Println("slack absorbs inserts cheaply; packed trees split, paying on both inserts and later scans")
	fmt.Printf("%-6s %-12s %-12s %-12s\n", "fill", "build-pages", "insert-cost", "query-cost")
	for _, fill := range []float64{0.5, 0.7, 0.9, 1.0} {
		tree, err := coconut.BuildTree(data, coconut.Options{
			SeriesLen: length, Materialized: true, FillFactor: fill,
		})
		if err != nil {
			log.Fatal(err)
		}
		afterBuild := tree.Stats()
		for i, s := range inserts {
			if err := tree.Insert(s, int64(i)); err != nil {
				log.Fatal(err)
			}
		}
		afterInsert := tree.Stats()
		for _, q := range queries {
			if _, err := tree.Search(q, 1); err != nil {
				log.Fatal(err)
			}
		}
		afterQuery := tree.Stats()
		fmt.Printf("%-6.2f %-12d %-12.0f %-12.0f\n",
			fill,
			afterBuild.Pages,
			afterInsert.Cost(10)-afterBuild.Cost(10),
			(afterQuery.Cost(10)-afterInsert.Cost(10))/float64(len(queries)))
		tree.Close()
	}

	fmt.Println("\nCLSM growth-factor sweep: higher T = cheaper ingest, more runs per query")
	fmt.Printf("%-4s %-12s %-8s %-12s\n", "T", "ingest-cost", "runs", "query-cost")
	for _, growth := range []int{2, 4, 8} {
		lsm, err := coconut.NewLSM(coconut.Options{
			SeriesLen: length, Materialized: true,
			GrowthFactor: growth, BufferEntries: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range data {
			if err := lsm.Insert(s, int64(i)); err != nil {
				log.Fatal(err)
			}
		}
		afterIngest := lsm.Stats()
		for _, q := range queries {
			if _, err := lsm.Search(q, 1); err != nil {
				log.Fatal(err)
			}
		}
		afterQuery := lsm.Stats()
		fmt.Printf("%-4d %-12.0f %-8d %-12.0f\n",
			growth,
			afterIngest.Cost(10),
			lsm.Runs(),
			(afterQuery.Cost(10)-afterIngest.Cost(10))/float64(len(queries)))
		lsm.Close()
	}

	fmt.Println("\nBuffer-pool sweep: cache size vs. hit ratio and warm query cost")
	fmt.Println("the pool sits between every index and the disk; hits are free, only misses reach the head")
	fmt.Printf("%-8s %-8s %-14s %-14s\n", "cache", "hit%", "cold-cost/q", "warm-cost/q")
	for _, cacheKB := range []int64{0, 64, 512, 8192} {
		tree, err := coconut.BuildTree(data, coconut.Options{
			SeriesLen: length, Materialized: true,
			CacheBytes: cacheKB * 1024,
		})
		if err != nil {
			log.Fatal(err)
		}
		cost := func(run func()) float64 {
			before := tree.Stats()
			run()
			return (tree.Stats().Cost(10) - before.Cost(10)) / float64(len(queries))
		}
		coldCost := cost(func() {
			for _, q := range queries {
				if _, err := tree.Search(q, 1); err != nil {
					log.Fatal(err)
				}
			}
		})
		before := tree.Stats()
		warmCost := cost(func() {
			for _, q := range queries {
				if _, err := tree.Search(q, 1); err != nil {
					log.Fatal(err)
				}
			}
		})
		warm := tree.Stats()
		hitPct := 0.0
		if total := warm.CacheHits - before.CacheHits + warm.CacheMisses - before.CacheMisses; total > 0 {
			hitPct = 100 * float64(warm.CacheHits-before.CacheHits) / float64(total)
		}
		label := "off"
		if cacheKB > 0 {
			label = fmt.Sprintf("%dKB", cacheKB)
		}
		fmt.Printf("%-8s %-8.1f %-14.0f %-14.0f\n", label, hitPct, coldCost, warmCost)
		tree.Close()
	}
}
