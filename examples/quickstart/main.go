// Quickstart: build a CoconutTree over random-walk series and run
// approximate and exact nearest-neighbor queries.
package main

import (
	"fmt"
	"log"
	"math/rand"

	coconut "repro"
)

func main() {
	const (
		n      = 20000
		length = 256
	)
	// Generate a synthetic collection of random walks — the standard data
	// series benchmark workload.
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, n)
	for i := range data {
		s := make([]float64, length)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		data[i] = s
	}

	// Bulk-load a read-optimized CoconutTree. Construction summarizes every
	// series into a sortable iSAX key, external-sorts the keys, and packs
	// the index contiguously — sequential I/O end to end.
	tree, err := coconut.BuildTree(data, coconut.Options{
		SeriesLen:    length,
		Materialized: true, // store series inline: fastest queries
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	st := tree.Stats()
	fmt.Printf("built CTreeFull over %d series: %d pages, %d seq / %d rand writes\n",
		tree.Count(), st.Pages, st.SeqWrites, st.RandWrites)

	// Query with a perturbed copy of a stored series.
	q := make([]float64, length)
	copy(q, data[1234])
	for j := range q {
		q[j] += rng.NormFloat64() * 0.01
	}

	approx, err := tree.SearchApprox(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approximate 3-NN (one page read):")
	for _, m := range approx {
		fmt.Printf("  id=%-6d dist=%.4f\n", m.ID, m.Dist)
	}

	exact, err := tree.Search(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact 3-NN (pruned sequential scan):")
	for _, m := range exact {
		fmt.Printf("  id=%-6d dist=%.4f\n", m.ID, m.Dist)
	}
	if exact[0].ID == 1234 {
		fmt.Println("the perturbed source series was correctly identified")
	}
}
