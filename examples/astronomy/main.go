// Astronomy reproduces the demo's Scenario 1: exploring a large static
// collection of light curves for known patterns of interest (supernovae,
// eclipsing binary stars). It runs the exploration workflow on the ADS+
// baseline and on the recommender's choice, comparing construction cost,
// query cost, and recall of the injected events.
package main

import (
	"fmt"
	"log"

	coconut "repro"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	const (
		n      = 20000
		length = 256
	)
	fmt.Println("Scenario 1: big static data series (synthetic astronomy workload)")
	ds, injected := gen.Astronomy(gen.AstronomyConfig{
		N: n, Len: length, FracEvent: 0.02, NoiseStd: 0.1, Seed: 42,
	})
	fmt.Printf("collection: %d light curves of length %d, %d with injected events\n\n",
		ds.Count(), length, len(injected))

	// Step 1: ask the recommender. Exploration means a handful of queries.
	rec := coconut.Recommend(coconut.Scenario{
		Streaming:        false,
		ExpectedQueries:  20,
		MemoryBudgetFrac: 0.1,
	})
	fmt.Println(rec.String())

	// Step 2: run the same workflow on the baseline and the recommendation.
	cfg := index.Config{SeriesLen: length, Segments: 16, Bits: 8}
	queries := gen.TemplateQueries(gen.TemplateSupernova, length, 10, 0.1, 7)
	for _, variant := range []string{"ADS+", string(rec.Index)} {
		b, err := workload.BuildVariant(variant, ds, cfg, workload.BuildOptions{})
		if err != nil {
			log.Fatal(err)
		}
		cost := b.BuildCost(storage.DefaultCostModel)
		qs, err := workload.RunQueries(b, queries, cfg, 5, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s build cost %-8.0f index pages %-6d exact query cost %-8.1f mean 1-NN dist %.3f\n",
			variant, cost, b.IndexPages, qs.Cost(storage.DefaultCostModel), qs.MeanDist)
	}

	// Step 3: verify the exploration finds the planted supernovae: query
	// with a clean template and check the top answers are injected events.
	b, err := workload.BuildVariant("CTreeFull", ds, cfg, workload.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	isInjected := map[int64]string{}
	for _, in := range injected {
		isInjected[int64(in.ID)] = in.Template.String()
	}
	q := index.NewQuery(gen.TemplateSupernova.Shape(length, 0.3), cfg)
	rs, err := b.Index.ExactSearch(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	fmt.Println("\ntop-10 matches for a clean supernova template:")
	for _, r := range rs {
		tag := "background"
		if tpl, ok := isInjected[r.ID]; ok {
			tag = "INJECTED " + tpl
			hits++
		}
		fmt.Printf("  id=%-6d dist=%6.3f  %s\n", r.ID, r.Dist, tag)
	}
	fmt.Printf("recall within top-10: %d/10 are injected events\n", hits)
}
