package coconut

import (
	"fmt"
	"sync"
	"testing"
)

// These tests pin the query planner's core contract at the facade level:
// ordering probes by synopsis bound, skipping bound-dominated units, and
// reusing plan-cache tables may change I/O cost and wall-clock time, but
// never answers. Every query below runs against a planner-off reference
// (Options.DisablePlanner — the escape hatch these tests exist to exercise)
// and a planned index with a plan cache, twice per query so both the
// cache-miss and cache-hit plan paths answer, and must match byte for byte
// on exact, range, windowed, and batch searches, for Tree, LSM, and Sharded
// at shard counts 1, 2, 4, and 7.

func plannedOpts(base Options) (off, on Options) {
	off, on = base, base
	off.DisablePlanner = true
	on.PlanCacheSize = 64
	return off, on
}

// checkPlannedEquiv runs the query matrix twice (cold plan cache, then
// warm) against the planner-off reference.
func checkPlannedEquiv(t *testing.T, label string, queries [][]float64, off, on equivSearcher) {
	t.Helper()
	for _, q := range queries {
		wantK, err := off.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		eps := 1.0
		if len(wantK) > 2 {
			eps = wantK[2].Dist // guarantees a non-trivial range answer
		}
		wantR, err := off.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			gotK, err := on.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/exact/"+pass, wantK, gotK)
			gotR, err := on.SearchRange(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/range/"+pass, wantR, gotR)
		}
	}
}

func TestPlannedTreeEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 11)
	for _, mat := range []bool{false, true} {
		off, on := plannedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: mat})
		ref, err := BuildTree(data, off)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := BuildTree(data, on)
		if err != nil {
			t.Fatal(err)
		}
		label := map[bool]string{false: "tree", true: "treefull"}[mat]
		checkPlannedEquiv(t, label, queries, ref, planned)
		// Batch answers match the per-query planned answers.
		wantB, err := ref.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := planned.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantB {
			sameMatches(t, fmt.Sprintf("%s/batch/%d", label, i), wantB[i], gotB[i])
		}
		if st := planned.Stats(); st.PlanCacheHits == 0 {
			t.Fatalf("%s: warm passes recorded no plan-cache hits (%+v)", label, st)
		}
		if st := ref.Stats(); st.PlannedSkips != 0 || st.PlanCacheHits != 0 {
			t.Fatalf("planner-off %s reports planner activity (%+v)", label, st)
		}
	}
}

func TestPlannedLSMEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 12)
	build := func(opts Options) *LSM {
		opts.BufferEntries = 256
		opts.GrowthFactor = 3
		l, err := NewLSM(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return l
	}
	off, on := plannedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6})
	ref := build(off)
	planned := build(on)
	checkPlannedEquiv(t, "lsm", queries, ref, planned)
	for _, q := range queries[:4] {
		want, err := ref.SearchWindow(q, 5, 500, 2200)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			got, err := planned.SearchWindow(q, 5, 500, 2200)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, "lsm/window/"+pass, want, got)
		}
	}
	wantB, err := ref.SearchBatch(queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := planned.SearchBatch(queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		sameMatches(t, fmt.Sprintf("lsm/batch/%d", i), wantB[i], gotB[i])
	}
	if st := planned.Stats(); st.PlanCacheHits == 0 {
		t.Fatalf("warm passes recorded no plan-cache hits (%+v)", st)
	}
}

func TestPlannedShardedEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 13)
	off, on := plannedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: true})
	// The strongest reference: a planner-off unsharded tree, which the
	// sharded planned answers must match byte for byte at every count.
	ref, err := BuildTree(data, off)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		refSharded, err := BuildShardedTree(data, shards, off)
		if err != nil {
			t.Fatal(err)
		}
		planned, err := BuildShardedTree(data, shards, on)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("sharded%d", shards)
		checkPlannedEquiv(t, label, queries, ref, planned)
		for _, q := range queries[:4] {
			want, err := refSharded.SearchWindow(q, 5, 100, 2500)
			if err != nil {
				t.Fatal(err)
			}
			for _, pass := range []string{"cold", "warm"} {
				got, err := planned.SearchWindow(q, 5, 100, 2500)
				if err != nil {
					t.Fatal(err)
				}
				sameMatches(t, label+"/window/"+pass, want, got)
			}
		}
		wantB, err := refSharded.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := planned.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantB {
			sameMatches(t, fmt.Sprintf("%s/batch/%d", label, i), wantB[i], gotB[i])
		}
		if st := planned.Stats(); st.PlanCacheHits == 0 {
			t.Fatalf("%s: warm passes recorded no plan-cache hits (%+v)", label, st)
		}
		if st := refSharded.Stats(); st.PlannedSkips != 0 {
			t.Fatalf("planner-off %s reports %d skips", label, st.PlannedSkips)
		}
	}
}

// TestPlannedShardedLSMEquivalence covers the LSM shard kind (runs inside
// shards, so the shard plan nests over the per-run plan).
func TestPlannedShardedLSMEquivalence(t *testing.T) {
	data, queries := cacheEquivData(2000, 64, 14)
	build := func(opts Options, shards int) *Sharded {
		opts.BufferEntries = 200
		opts.GrowthFactor = 3
		s, err := NewShardedLSM(shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, ser := range data {
			if err := s.Insert(ser, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	off, on := plannedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6})
	for _, shards := range []int{2, 7} {
		ref := build(off, shards)
		planned := build(on, shards)
		checkPlannedEquiv(t, fmt.Sprintf("shardedlsm%d", shards), queries[:6], ref, planned)
	}
}

// TestPlanCacheConcurrentBatches hammers one shared plan cache from
// concurrent SearchBatch calls over a duplicated query set (maximum
// contention on the same cache buckets) and checks every answer against the
// planner-off reference. Run under -race this also pins the cache and the
// planner counters race-clean across batch worker slots.
func TestPlanCacheConcurrentBatches(t *testing.T) {
	data, queries := cacheEquivData(2000, 64, 15)
	off, on := plannedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: true})
	on.PlanCacheSize = 8 // smaller than the query set: eviction under contention
	ref, err := BuildShardedTree(data, 4, off)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := BuildShardedTree(data, 4, on)
	if err != nil {
		t.Fatal(err)
	}
	dup := append(append([][]float64{}, queries...), queries...)
	want, err := ref.SearchBatch(dup, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				got, err := planned.SearchBatch(dup, 5)
				if err != nil {
					errs[g] = err
					return
				}
				for i := range want {
					if len(got[i]) != len(want[i]) {
						errs[g] = fmt.Errorf("goroutine %d round %d query %d: %d vs %d results", g, round, i, len(got[i]), len(want[i]))
						return
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							errs[g] = fmt.Errorf("goroutine %d round %d query %d result %d: %+v vs %+v", g, round, i, j, got[i][j], want[i][j])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := planned.Stats(); st.PlanCacheHits == 0 {
		t.Fatalf("duplicated concurrent batches recorded no plan-cache hits (%+v)", st)
	}
}
