// Command coconut-cli is the exploration client of Coconut Palm: the CLI
// stand-in for the demo's GUI (Figure 2). It talks to a running
// coconut-server over the REST API and supports the full demo workflow —
// generating datasets, building and comparing index variants, drawing
// (generating) query patterns, issuing approximate/exact windowed queries,
// consulting the recommender, and printing access-pattern heat maps.
//
// Usage:
//
//	coconut-cli [-server URL] <command> [flags]
//
// Commands:
//
//	health                              check the server
//	dataset  -kind astronomy -n 10000 -len 256
//	build    -dataset ds-1 -variant CTree [-fill 0.9] [-growth 4] [-shards 4] [-cache 4194304]
//	         [-wal batched|sync|off] [-compact-workers 2] [-storage sim|file]
//	         [-plan-cache 64] [-no-planner] [-compress]
//	insert   -build build-1 -n 100 [-template supernova] [-ts 7]
//	query    -build build-1 -template supernova [-k 5] [-exact] [-min 0 -max 99]
//	recommend -streaming -queries 500 -memfrac 0.1 [-tight] [-smallwin]
//	heatmap  -build build-1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/gen"
	"repro/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	serverURL := "http://localhost:8734"
	args := os.Args[1:]
	if args[0] == "-server" && len(args) >= 2 {
		serverURL = args[1]
		args = args[2:]
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "health":
		err = health(serverURL)
	case "dataset":
		err = dataset(serverURL, rest)
	case "build":
		err = build(serverURL, rest)
	case "insert":
		err = insertCmd(serverURL, rest)
	case "query":
		err = query(serverURL, rest)
	case "explain":
		err = explainCmd(serverURL, rest)
	case "stats":
		err = statsCmd(serverURL, rest)
	case "recommend":
		err = recommend(serverURL, rest)
	case "heatmap":
		err = heatmapCmd(serverURL, rest)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coconut-cli: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coconut-cli [-server URL] <health|dataset|build|insert|query|explain|stats|recommend|heatmap> [flags]")
}

// statsCmd prints a build's I/O and buffer-pool accounting.
func statsCmd(base string, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	buildID := fs.String("build", "", "build id (required)")
	fs.Parse(args)
	if *buildID == "" {
		return fmt.Errorf("stats: -build is required")
	}
	var out server.StatsResponse
	if err := call("GET", base+"/api/stats?build="+*buildID, nil, &out); err != nil {
		return err
	}
	pretty(out)
	return nil
}

func call(method, url string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func pretty(v any) {
	buf, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(buf))
}

func health(base string) error {
	var out map[string]string
	if err := call("GET", base+"/api/health", nil, &out); err != nil {
		return err
	}
	pretty(out)
	return nil
}

func dataset(base string, args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	kind := fs.String("kind", "astronomy", "astronomy or randomwalk")
	n := fs.Int("n", 10000, "series count")
	length := fs.Int("len", 256, "series length")
	frac := fs.Float64("frac", 0.05, "fraction of injected event templates (astronomy)")
	seed := fs.Int64("seed", 42, "generator seed")
	fs.Parse(args)
	var out server.DatasetResponse
	err := call("POST", base+"/api/datasets", server.DatasetRequest{
		Kind: *kind, N: *n, Len: *length, FracEvent: *frac, Seed: *seed,
	}, &out)
	if err != nil {
		return err
	}
	pretty(out)
	return nil
}

func build(base string, args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	ds := fs.String("dataset", "", "dataset id (required)")
	variant := fs.String("variant", "CTree", "ADS+, ADSFull, CTree, CTreeFull, CLSM, CLSMFull")
	segments := fs.Int("segments", 16, "iSAX segments")
	bits := fs.Int("bits", 8, "cardinality bits per segment")
	fill := fs.Float64("fill", 1.0, "CTree leaf fill factor")
	growth := fs.Int("growth", 4, "CLSM growth factor")
	mem := fs.Int("mem", 1<<20, "construction memory budget (bytes)")
	shards := fs.Int("shards", 0, "shard count (0 = server default, 1 = unsharded, N > 1 hash-partitions)")
	par := fs.Int("parallelism", 0, "per-query worker pool (0 = server default, 1 = serial, -1 = one per CPU)")
	cache := fs.Int64("cache", 0, "buffer-pool bytes (0 = server default, -1 = force uncached)")
	walMode := fs.String("wal", "", "CLSM durability: batched, sync, or off (needs the server's -wal root; empty = batched when the root is set)")
	compactWorkers := fs.Int("compact-workers", 0, "CLSM background-merge workers (0 = server default, -1 = force inline)")
	storage := fs.String("storage", "", "storage backend: sim (simulated disk) or file (real page files; needs the server's -storage root; empty = server default)")
	planCache := fs.Int("plan-cache", 0, "plan-cache entries (0 = server default, -1 = force no cache)")
	noPlanner := fs.Bool("no-planner", false, "disable statistics-driven probe ordering and skipping for this build")
	compress := fs.Bool("compress", false, "store on-disk pages (tree leaves, LSM runs) in the packed encoding; answers identical, I/O cost lower")
	fs.Parse(args)
	if *ds == "" {
		return fmt.Errorf("build: -dataset is required")
	}
	switch *walMode {
	case "", "batched", "sync", "off":
	default:
		return fmt.Errorf("build: -wal must be batched, sync, or off, got %q", *walMode)
	}
	switch *storage {
	case "", "sim", "file":
	default:
		return fmt.Errorf("build: -storage must be sim or file, got %q", *storage)
	}
	if *compactWorkers < -1 || *compactWorkers > 64 {
		return fmt.Errorf("build: -compact-workers must be in [-1, 64] (-1 = force inline, 0 = server default), got %d", *compactWorkers)
	}
	// Validate client-side so a bad flag fails fast with a clear message
	// instead of a server 400.
	if *shards < 0 {
		return fmt.Errorf("build: -shards must be >= 0 (0 = server default, N > 1 shards), got %d", *shards)
	}
	if *cache < -1 {
		return fmt.Errorf("build: -cache must be >= -1 (-1 = force uncached, 0 = server default), got %d", *cache)
	}
	if *planCache < -1 {
		return fmt.Errorf("build: -plan-cache must be >= -1 (-1 = force no cache, 0 = server default), got %d", *planCache)
	}
	var out server.BuildResponse
	err := call("POST", base+"/api/build", server.BuildRequest{
		Dataset: *ds, Variant: *variant, Segments: *segments, Bits: *bits,
		FillFactor: *fill, GrowthFactor: *growth, MemBudget: *mem,
		Shards: *shards, Parallelism: *par, CacheBytes: *cache,
		Durability: *walMode, CompactionWorkers: *compactWorkers,
		Storage: *storage, PlanCache: *planCache, DisablePlanner: *noPlanner,
		Compress: *compress,
	}, &out)
	if err != nil {
		return err
	}
	pretty(out)
	return nil
}

// insertCmd streams generated series into a live build — the durable
// ingest path (POST /api/insert).
func insertCmd(base string, args []string) error {
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	buildID := fs.String("build", "", "build id (required)")
	n := fs.Int("n", 100, "series to insert")
	template := fs.String("template", "randomwalk", "series pattern: supernova, binary-star, earthquake, randomwalk")
	length := fs.Int("len", 256, "series length (must match the dataset)")
	ts := fs.Int64("ts", 0, "ingestion timestamp for the batch")
	seed := fs.Int64("seed", 1, "pattern seed")
	fs.Parse(args)
	if *buildID == "" {
		return fmt.Errorf("insert: -build is required")
	}
	if *n < 1 || *n > 1<<16 {
		return fmt.Errorf("insert: -n must be in [1, 65536], got %d", *n)
	}
	var tmpl gen.Template
	noise := 0.1
	switch *template {
	case "supernova":
		tmpl = gen.TemplateSupernova
	case "binary-star":
		tmpl = gen.TemplateBinaryStar
	case "earthquake":
		tmpl = gen.TemplateEarthquake
	case "randomwalk":
		tmpl, noise = gen.TemplateSupernova, 10
	default:
		return fmt.Errorf("insert: unknown template %q", *template)
	}
	raw := gen.TemplateQueries(tmpl, *length, *n, noise, *seed)
	batch := make([][]float64, len(raw))
	for i, ser := range raw {
		batch[i] = ser
	}
	var out server.InsertResponse
	if err := call("POST", base+"/api/insert", server.InsertRequest{
		Build: *buildID, Series: batch, TS: *ts,
	}, &out); err != nil {
		return err
	}
	pretty(out)
	return nil
}

func query(base string, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	buildID := fs.String("build", "", "build id (required)")
	template := fs.String("template", "supernova", "query pattern: supernova, binary-star, earthquake, randomwalk")
	length := fs.Int("len", 256, "query length (must match the dataset)")
	k := fs.Int("k", 1, "neighbors")
	exact := fs.Bool("exact", false, "exact (vs approximate) search")
	minTS := fs.Int64("min", -1, "window lower bound (with -max)")
	maxTS := fs.Int64("max", -1, "window upper bound (with -min)")
	seed := fs.Int64("seed", 1, "pattern seed")
	fs.Parse(args)
	if *buildID == "" {
		return fmt.Errorf("query: -build is required")
	}
	q, err := templateQuery(*template, *length, *seed)
	if err != nil {
		return fmt.Errorf("query: %v", err)
	}
	req := server.QueryRequest{Build: *buildID, Series: q, K: *k, Exact: *exact}
	if *minTS >= 0 && *maxTS >= 0 {
		req.MinTS, req.MaxTS = minTS, maxTS
	}
	var out server.QueryResponse
	if err := call("POST", base+"/api/query", req, &out); err != nil {
		return err
	}
	pretty(out)
	return nil
}

// explainCmd runs one traced query and renders the execution trace — plan
// cache outcome, per-kind probe/skip counts, candidate verification,
// phase timings, per-query I/O — followed by the build's access heat map.
func explainCmd(base string, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	buildID := fs.String("build", "", "build id (required)")
	template := fs.String("template", "supernova", "query pattern: supernova, binary-star, earthquake, randomwalk")
	length := fs.Int("len", 256, "query length (must match the dataset)")
	k := fs.Int("k", 1, "neighbors")
	exact := fs.Bool("exact", false, "exact (vs approximate) search")
	minTS := fs.Int64("min", -1, "window lower bound (with -max)")
	maxTS := fs.Int64("max", -1, "window upper bound (with -min)")
	seed := fs.Int64("seed", 1, "pattern seed")
	units := fs.Bool("units", false, "also list per-unit probe records (bounds per run/partition/leaf/shard)")
	noHeat := fs.Bool("no-heatmap", false, "skip the access heat map")
	fs.Parse(args)
	if *buildID == "" {
		return fmt.Errorf("explain: -build is required")
	}
	q, err := templateQuery(*template, *length, *seed)
	if err != nil {
		return fmt.Errorf("explain: %v", err)
	}
	req := server.QueryRequest{Build: *buildID, Series: q, K: *k, Exact: *exact, Trace: true}
	if *minTS >= 0 && *maxTS >= 0 {
		req.MinTS, req.MaxTS = minTS, maxTS
	}
	var out server.QueryResponse
	if err := call("POST", base+"/api/query", req, &out); err != nil {
		return err
	}
	for i, r := range out.Results {
		fmt.Printf("#%d id=%d ts=%d dist=%.6f\n", i+1, r.ID, r.TS, r.Dist)
	}
	tr := out.Trace
	if tr == nil {
		return fmt.Errorf("explain: server returned no trace (older server?)")
	}
	fmt.Printf("\nmode=%s k=%d kernel=%s wall=%dus plan_cache=%s planned_skips=%d\n",
		tr.Mode, tr.K, tr.Kernel, tr.WallMicros, tr.PlanCache, tr.PlannedSkips)
	for _, kc := range tr.Kinds {
		fmt.Printf("  %-10s probed=%-6d skipped=%d\n", kc.Kind, kc.Probed, kc.Skipped)
	}
	c := tr.Candidates
	fmt.Printf("candidates: seen=%d verified=%d abandoned=%d pruned=%d\n",
		c.Seen, c.Verified, c.Abandoned, c.Pruned)
	for _, ph := range tr.Phases {
		fmt.Printf("  phase %-8s %dus\n", ph.Name, ph.Micros)
	}
	io := tr.IO
	fmt.Printf("io: seq_r=%d rand_r=%d seq_w=%d rand_w=%d cache_hit=%d cache_miss=%d cost=%.1f\n",
		io.SeqReads, io.RandReads, io.SeqWrites, io.RandWrites, io.CacheHits, io.CacheMisses, io.Cost)
	if *units {
		for _, u := range tr.Units {
			state := "probe"
			if u.Skipped {
				state = "skip"
			}
			fmt.Printf("  unit %-10s idx=%-5d bound_sq=%-12.4f %s\n", u.Kind, u.Idx, u.BoundSq, state)
		}
		if tr.UnitsTruncated > 0 {
			fmt.Printf("  ... %d more units (detail capped)\n", tr.UnitsTruncated)
		}
	}
	if !*noHeat {
		fmt.Println()
		if err := heatmapCmd(base, []string{"-build", *buildID}); err != nil {
			return err
		}
	}
	return nil
}

// templateQuery generates one query series from a named pattern.
func templateQuery(template string, length int, seed int64) ([]float64, error) {
	switch template {
	case "supernova":
		return gen.TemplateQueries(gen.TemplateSupernova, length, 1, 0.1, seed)[0], nil
	case "binary-star":
		return gen.TemplateQueries(gen.TemplateBinaryStar, length, 1, 0.1, seed)[0], nil
	case "earthquake":
		return gen.TemplateQueries(gen.TemplateEarthquake, length, 1, 0.1, seed)[0], nil
	case "randomwalk":
		return gen.TemplateQueries(gen.TemplateSupernova, length, 1, 10, seed)[0], nil
	}
	return nil, fmt.Errorf("unknown template %q", template)
}

func recommend(base string, args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	streaming := fs.Bool("streaming", false, "data arrives continuously")
	queries := fs.Int("queries", 100, "expected query count")
	update := fs.Float64("update", 0, "update rate [0,1]")
	mem := fs.Float64("memfrac", 0.1, "memory budget as fraction of data")
	tight := fs.Bool("tight", false, "storage is a first-order cost")
	smallwin := fs.Bool("smallwin", false, "queries favor narrow recent windows")
	fs.Parse(args)
	var out server.RecommendResponse
	err := call("POST", base+"/api/recommend", server.RecommendRequest{
		Streaming: *streaming, ExpectedQueries: *queries, UpdateRate: *update,
		MemoryBudgetFrac: *mem, StorageTight: *tight, SmallWindows: *smallwin,
	}, &out)
	if err != nil {
		return err
	}
	fmt.Printf("recommendation: %s\n", out.Variant)
	for i, r := range out.Rationale {
		fmt.Printf("  %d. %s\n", i+1, r)
	}
	return nil
}

func heatmapCmd(base string, args []string) error {
	fs := flag.NewFlagSet("heatmap", flag.ExitOnError)
	buildID := fs.String("build", "", "build id (required)")
	fs.Parse(args)
	if *buildID == "" {
		return fmt.Errorf("heatmap: -build is required")
	}
	var out server.HeatmapResponse
	if err := call("GET", base+"/api/heatmap?build="+*buildID, nil, &out); err != nil {
		return err
	}
	for _, line := range out.ASCII {
		fmt.Println(line)
	}
	fmt.Printf("accesses=%d seq_frac=%.2f avg_jump=%.1f file_swaps=%d write_share=%.2f\n",
		out.Jumps.Accesses, out.Jumps.SeqFrac, out.Jumps.AvgJump, out.Jumps.FileSwaps, out.Jumps.WriteShare)
	return nil
}
