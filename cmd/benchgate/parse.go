package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Measurement aggregates every run of one benchmark in a `go test -bench`
// output file. Runs of the same benchmark (from -count > 1) accumulate so
// the gate can compare noise-resistant summaries instead of single samples.
type Measurement struct {
	Name    string    // benchmark name with the -GOMAXPROCS suffix stripped
	NsPerOp []float64 // one entry per run
	// AllocsPerOp / BytesPerOp are -1 until a run reports them (-benchmem
	// or b.ReportAllocs); allocation counts are deterministic, so the gate
	// keeps the minimum across runs.
	AllocsPerOp float64
	BytesPerOp  float64
	// IOCostPerQuery is -1 until a run reports the custom io-cost/query
	// metric (b.ReportMetric in the search benchmarks). Simulated-disk
	// accounting is deterministic, but the per-op average amortizes one-time
	// cold costs over b.N, so the gate keeps the minimum across runs.
	IOCostPerQuery float64
}

// MinNs returns the fastest run — the standard noise-robust summary for
// best-case comparisons: external interference only ever slows a run down,
// so the minimum is the closest observable to the code's true cost.
func (m *Measurement) MinNs() float64 {
	min := m.NsPerOp[0]
	for _, v := range m.NsPerOp[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// ParseBench reads `go test -bench` output and returns the measurements
// keyed by benchmark name. Lines that are not benchmark results (headers,
// PASS, custom metrics printed by the harness) are skipped.
func ParseBench(r io.Reader) (map[string]*Measurement, error) {
	out := map[string]*Measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count; some other Benchmark-prefixed line
		}
		name := normalizeName(fields[0])
		m := out[name]
		if m == nil {
			m = &Measurement{Name: name, AllocsPerOp: -1, BytesPerOp: -1, IOCostPerQuery: -1}
			out[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = append(m.NsPerOp, val)
			case "allocs/op":
				if m.AllocsPerOp < 0 || val < m.AllocsPerOp {
					m.AllocsPerOp = val
				}
			case "B/op":
				if m.BytesPerOp < 0 || val < m.BytesPerOp {
					m.BytesPerOp = val
				}
			case "io-cost/query":
				if m.IOCostPerQuery < 0 || val < m.IOCostPerQuery {
					m.IOCostPerQuery = val
				}
			}
		}
		if len(m.NsPerOp) == 0 {
			delete(out, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading bench output: %w", err)
	}
	return out, nil
}

// normalizeName strips the trailing -N GOMAXPROCS suffix go test appends,
// so results compare across machines with different core counts.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// sortedNames returns the benchmark names present in both maps, sorted.
func sortedNames(base, head map[string]*Measurement) []string {
	var names []string
	for name := range head {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
