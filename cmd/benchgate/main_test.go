package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseBench = `
goos: linux
goarch: amd64
pkg: repro
BenchmarkParallelSearch/workers=1-8         	      20	   5400000 ns/op	      3500 B/op	      23 allocs/op
BenchmarkParallelSearch/workers=1-8         	      20	   5500000 ns/op	      3500 B/op	      23 allocs/op
BenchmarkParallelSearch/workers=4-8         	      20	   5000000 ns/op	      7000 B/op	      49 allocs/op
BenchmarkMinDist/table-8                    	 5000000	       219 ns/op	         0 B/op	       0 allocs/op
BenchmarkMinDist/table-8                    	 5000000	       225 ns/op	         0 B/op	       0 allocs/op
BenchmarkVerify/encoded-early-abandon-8     	 6000000	       206 ns/op	         0 B/op	       0 allocs/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	ms, err := ParseBench(strings.NewReader(baseBench))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := ms["BenchmarkParallelSearch/workers=1"]
	if !ok {
		t.Fatalf("missing workers=1; have %v", ms)
	}
	if len(m.NsPerOp) != 2 || m.MinNs() != 5400000 {
		t.Fatalf("workers=1 runs %v, min %v", m.NsPerOp, m.MinNs())
	}
	if m.AllocsPerOp != 23 || m.BytesPerOp != 3500 {
		t.Fatalf("workers=1 allocs %v bytes %v", m.AllocsPerOp, m.BytesPerOp)
	}
	if got := ms["BenchmarkMinDist/table"].MinNs(); got != 219 {
		t.Fatalf("table min %v", got)
	}
}

func TestGatePassesOnEqualAndFaster(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "5400000", "4300000") // faster is fine
	report, err := gate(writeTemp(t, "base.txt", baseBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed {
		t.Fatalf("gate failed on a speedup: %+v", report.Compared)
	}
	if len(report.Compared) != 4 {
		t.Fatalf("compared %d benchmarks, want 4", len(report.Compared))
	}
}

// TestGateTripsOnTimeRegression is the gate's dry run: a synthetic head
// 5x slower on one benchmark must fail.
func TestGateTripsOnTimeRegression(t *testing.T) {
	head := strings.ReplaceAll(baseBench, "   5400000 ns/op", "  27000000 ns/op")
	head = strings.ReplaceAll(head, "   5500000 ns/op", "  27500000 ns/op")
	report, err := gate(writeTemp(t, "base.txt", baseBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed {
		t.Fatal("gate passed a 5x time regression")
	}
	var hit bool
	for _, c := range report.Compared {
		if c.Name == "BenchmarkParallelSearch/workers=1" && len(c.Regressions) > 0 {
			hit = true
			if c.TimeRatio < 4.9 || c.TimeRatio > 5.1 {
				t.Fatalf("ratio %v, want ~5", c.TimeRatio)
			}
		}
	}
	if !hit {
		t.Fatalf("regression not attributed to the slowed benchmark: %+v", report.Compared)
	}
}

func TestGateTripsOnAllocRegression(t *testing.T) {
	// Times unchanged; one benchmark grows a single allocation.
	head := strings.ReplaceAll(baseBench, "       0 allocs/op", "       1 allocs/op")
	report, err := gate(writeTemp(t, "base.txt", baseBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed {
		t.Fatal("gate passed an alloc/op regression")
	}
}

func TestGateIgnoresNoiseFloor(t *testing.T) {
	// A 219ns benchmark jumping 30% stays under the 400ns floor: not gated.
	head := strings.ReplaceAll(baseBench, "       219 ns/op", "       290 ns/op")
	head = strings.ReplaceAll(head, "       225 ns/op", "       292 ns/op")
	report, err := gate(writeTemp(t, "base.txt", baseBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 400)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed {
		t.Fatalf("gate failed inside the noise floor: %+v", report.Compared)
	}
}

func TestGateToleratesMissingBenchmarks(t *testing.T) {
	// Head adds a benchmark the base lacks (the common first-PR case) and
	// the base has one the head dropped: reported, never gated.
	head := baseBench + "BenchmarkNewThing-8    100    999999 ns/op    10 B/op    1 allocs/op\n"
	base := baseBench + "BenchmarkOldThing-8    100    999999 ns/op    10 B/op    1 allocs/op\n"
	report, err := gate(writeTemp(t, "base.txt", base), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed {
		t.Fatal("gate failed on asymmetric benchmark sets")
	}
	if len(report.HeadOnly) != 1 || report.HeadOnly[0] != "BenchmarkNewThing" {
		t.Fatalf("head-only %v", report.HeadOnly)
	}
	if len(report.BaseOnly) != 1 || report.BaseOnly[0] != "BenchmarkOldThing" {
		t.Fatalf("base-only %v", report.BaseOnly)
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	report, err := gate(writeTemp(t, "base.txt", baseBench), writeTemp(t, "head.txt", baseBench), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Failed || len(back.Compared) != len(report.Compared) {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

const ioBench = `
BenchmarkPlannedSearch/cold-8    100    2100000 ns/op    9000 io-cost/query    120 B/op    3 allocs/op
BenchmarkPlannedSearch/warm-8    200    1100000 ns/op    9000 io-cost/query      0 B/op    0 allocs/op
PASS
`

func TestParseIOCostMetric(t *testing.T) {
	ms, err := ParseBench(strings.NewReader(ioBench))
	if err != nil {
		t.Fatal(err)
	}
	m := ms["BenchmarkPlannedSearch/cold"]
	if m == nil || m.IOCostPerQuery != 9000 {
		t.Fatalf("cold io-cost = %+v, want 9000", m)
	}
	if got := ms["BenchmarkMinDist/table"]; got != nil {
		t.Fatalf("unexpected benchmark %+v", got)
	}
	// Benchmarks without the metric keep the -1 sentinel.
	base, _ := ParseBench(strings.NewReader(baseBench))
	if got := base["BenchmarkMinDist/table"].IOCostPerQuery; got != -1 {
		t.Fatalf("metric-less benchmark io-cost = %v, want -1", got)
	}
}

func TestGateTripsOnIOCostRegression(t *testing.T) {
	head := strings.ReplaceAll(ioBench, "9000 io-cost/query", "9500 io-cost/query")
	report, err := gate(writeTemp(t, "base.txt", ioBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed {
		t.Fatal("gate passed a 5% io-cost/query regression")
	}
	var hit bool
	for _, c := range report.Compared {
		if len(c.Regressions) > 0 {
			hit = true
			if c.IORatio < 1.05 || c.IORatio > 1.06 {
				t.Fatalf("io ratio %v, want ~1.056", c.IORatio)
			}
		}
	}
	if !hit {
		t.Fatalf("regression not attributed: %+v", report.Compared)
	}
	// Inside the ratio slack (1% < 2%): not gated.
	head = strings.ReplaceAll(ioBench, "9000 io-cost/query", "9080 io-cost/query")
	report, err = gate(writeTemp(t, "base.txt", ioBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed {
		t.Fatalf("gate failed inside the io-ratio slack: %+v", report.Compared)
	}
	// A lower io-cost (the planner doing its job) passes.
	head = strings.ReplaceAll(ioBench, "9000 io-cost/query", "4000 io-cost/query")
	report, err = gate(writeTemp(t, "base.txt", ioBench), writeTemp(t, "head.txt", head), 1.15, 1.02, 200)
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed {
		t.Fatalf("gate failed on an io-cost improvement: %+v", report.Compared)
	}
}
