// Command benchgate is the benchmark-regression gate run by CI: it parses
// two `go test -bench` output files — the PR head and the merge base — and
// fails (exit 1) when the head regresses more than the allowed time ratio
// on any benchmark, allocates more per operation at all, or reports a
// higher io-cost/query than the allowed ratio on benchmarks that track the
// custom metric. It also writes a machine-readable JSON comparison so the
// perf trajectory can be tracked as a build artifact.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem -count 6 . | tee head.txt
//	git checkout <merge-base> && go test ... | tee base.txt
//	benchgate -base base.txt -head head.txt -max-time-ratio 1.15 -json BENCH_compare.json
//
// The CI workflow currently gates BenchmarkParallelSearch, BenchmarkMinDist,
// BenchmarkVerify, BenchmarkCachedSearch, and BenchmarkPlannedSearch (the
// GATE_BENCH list in .github/workflows/ci.yml); the alloc/op rule is what
// pins the cached search's zero-allocation warm page fetches and the warm
// plan-cache path, and the io-cost/query rule is what pins the planner's
// I/O savings.
//
// Time comparisons use the minimum across -count runs (noise only ever
// slows a run down), and regressions below -noise-floor-ns are ignored so
// sub-microsecond benchmarks cannot flake the gate. Allocation counts are
// deterministic, so any increase fails. The io-cost/query metric is
// deterministic too, but its per-op average amortizes one-time cold costs
// over b.N, so a small -max-io-ratio slack absorbs iteration-count skew.
// Benchmarks present on only one side are reported but never fail the gate
// (new benchmarks must be landable; deleted ones are the diff's business,
// not the gate's).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Comparison is one benchmark's base-vs-head verdict, serialized into the
// JSON artifact.
type Comparison struct {
	Name       string  `json:"name"`
	BaseNs     float64 `json:"base_ns_per_op"`
	HeadNs     float64 `json:"head_ns_per_op"`
	TimeRatio  float64 `json:"time_ratio"`
	BaseAllocs float64 `json:"base_allocs_per_op"`
	HeadAllocs float64 `json:"head_allocs_per_op"`
	BaseBytes  float64 `json:"base_bytes_per_op"`
	HeadBytes  float64 `json:"head_bytes_per_op"`
	// BaseIOCost / HeadIOCost are -1 when the benchmark does not report
	// the io-cost/query metric; IORatio is 0 in that case.
	BaseIOCost  float64  `json:"base_io_cost_per_query"`
	HeadIOCost  float64  `json:"head_io_cost_per_query"`
	IORatio     float64  `json:"io_ratio"`
	Regressions []string `json:"regressions,omitempty"`
}

// Report is the JSON artifact: every compared benchmark plus the gate's
// configuration and verdict.
type Report struct {
	MaxTimeRatio float64      `json:"max_time_ratio"`
	MaxIORatio   float64      `json:"max_io_ratio"`
	NoiseFloorNs float64      `json:"noise_floor_ns"`
	Compared     []Comparison `json:"compared"`
	HeadOnly     []string     `json:"head_only,omitempty"`
	BaseOnly     []string     `json:"base_only,omitempty"`
	Failed       bool         `json:"failed"`
}

func main() {
	var (
		basePath   = flag.String("base", "", "bench output of the merge base (required)")
		headPath   = flag.String("head", "", "bench output of the PR head (required)")
		maxRatio   = flag.Float64("max-time-ratio", 1.15, "fail when head time exceeds base time by this ratio")
		maxIORatio = flag.Float64("max-io-ratio", 1.02, "fail when head io-cost/query exceeds base by this ratio (on benchmarks reporting the metric)")
		noiseFloor = flag.Float64("noise-floor-ns", 200, "ignore time regressions where both sides are below this many ns/op")
		jsonPath   = flag.String("json", "", "write the machine-readable comparison to this file")
	)
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	report, err := gate(*basePath, *headPath, *maxRatio, *maxIORatio, *noiseFloor)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	for _, c := range report.Compared {
		status := "ok"
		if len(c.Regressions) > 0 {
			status = "REGRESSION"
		}
		io := ""
		if c.BaseIOCost >= 0 && c.HeadIOCost >= 0 {
			io = fmt.Sprintf("  %.0f -> %.0f io-cost/query", c.BaseIOCost, c.HeadIOCost)
		}
		fmt.Printf("%-60s %12.0f -> %12.0f ns/op (%.2fx)  %5.0f -> %5.0f allocs/op%s  [%s]\n",
			c.Name, c.BaseNs, c.HeadNs, c.TimeRatio, c.BaseAllocs, c.HeadAllocs, io, status)
		for _, r := range c.Regressions {
			fmt.Printf("    %s\n", r)
		}
	}
	for _, n := range report.HeadOnly {
		fmt.Printf("%-60s new in head (not gated)\n", n)
	}
	for _, n := range report.BaseOnly {
		fmt.Printf("%-60s missing from head (not gated)\n", n)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	if report.Failed {
		fmt.Println("benchgate: FAIL — performance regression against merge base")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// gate loads both files and compares every benchmark present in both.
func gate(basePath, headPath string, maxRatio, maxIORatio, noiseFloor float64) (*Report, error) {
	base, err := loadBench(basePath)
	if err != nil {
		return nil, err
	}
	head, err := loadBench(headPath)
	if err != nil {
		return nil, err
	}
	report := &Report{MaxTimeRatio: maxRatio, MaxIORatio: maxIORatio, NoiseFloorNs: noiseFloor}
	for _, name := range sortedNames(base, head) {
		b, h := base[name], head[name]
		c := Comparison{
			Name:   name,
			BaseNs: b.MinNs(), HeadNs: h.MinNs(),
			BaseAllocs: b.AllocsPerOp, HeadAllocs: h.AllocsPerOp,
			BaseBytes: b.BytesPerOp, HeadBytes: h.BytesPerOp,
			BaseIOCost: b.IOCostPerQuery, HeadIOCost: h.IOCostPerQuery,
		}
		if c.BaseNs > 0 {
			c.TimeRatio = c.HeadNs / c.BaseNs
		}
		if c.TimeRatio > maxRatio && !(c.BaseNs < noiseFloor && c.HeadNs < noiseFloor) {
			c.Regressions = append(c.Regressions,
				fmt.Sprintf("time regressed %.2fx (limit %.2fx)", c.TimeRatio, maxRatio))
		}
		// Any alloc/op increase is a regression: allocation counts are
		// deterministic, so there is no noise to tolerate.
		if c.BaseAllocs >= 0 && c.HeadAllocs > c.BaseAllocs {
			c.Regressions = append(c.Regressions,
				fmt.Sprintf("allocs/op regressed %.0f -> %.0f", c.BaseAllocs, c.HeadAllocs))
		}
		// io-cost/query is gated only when both sides report it: the
		// simulated-disk accounting is deterministic, with a small ratio
		// slack absorbing b.N amortization skew between runs.
		if c.BaseIOCost > 0 && c.HeadIOCost >= 0 {
			c.IORatio = c.HeadIOCost / c.BaseIOCost
			if c.IORatio > maxIORatio {
				c.Regressions = append(c.Regressions,
					fmt.Sprintf("io-cost/query regressed %.2fx (limit %.2fx): %.0f -> %.0f",
						c.IORatio, maxIORatio, c.BaseIOCost, c.HeadIOCost))
			}
		}
		if len(c.Regressions) > 0 {
			report.Failed = true
		}
		report.Compared = append(report.Compared, c)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			report.HeadOnly = append(report.HeadOnly, name)
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			report.BaseOnly = append(report.BaseOnly, name)
		}
	}
	// Deterministic artifact: identical inputs must serialize identically,
	// or diffing BENCH_compare.json across runs shows phantom changes.
	sort.Strings(report.HeadOnly)
	sort.Strings(report.BaseOnly)
	return report, nil
}

func loadBench(path string) (map[string]*Measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBench(f)
}
