// Command coconut-router fronts a cluster of coconut-server index nodes:
// it owns the hash-placement map (a topology JSON file), fans each query
// out over the nodes holding the cluster's shards, and merges their exact
// per-shard answers so the distributed result is byte-identical to a
// single-node index — at any node count and replication factor.
//
// Usage:
//
//	coconut-router -topology cluster.json -addr :8735
//
// where cluster.json names the shard count and each node's base URL, build
// ID, and shard set (see docs/OPERATIONS.md for a worked deployment):
//
//	{
//	  "shards": 4,
//	  "series_len": 256,
//	  "nodes": [
//	    {"name": "a", "url": "http://10.0.0.7:8734", "build": "build-1", "shards": [0, 1]},
//	    {"name": "b", "url": "http://10.0.0.8:8734", "build": "build-1", "shards": [2, 3]},
//	    {"name": "c", "url": "http://10.0.0.9:8734", "build": "build-1", "shards": [0, 1, 2, 3]}
//	  ]
//	}
//
// The router serves the same /api/query, /api/query/batch, and /api/insert
// the nodes do — clients need not know they face a cluster — plus
// /api/cluster/topology (placement + node health) and /api/cluster/drain
// (graceful node removal). Startup is strict: every node must be reachable
// and its build must match the topology, or the router refuses to serve.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8735", "listen address")
	topoPath := flag.String("topology", "", "topology JSON file: shard count plus each node's URL, build ID, and shard set (required)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-node request attempt timeout")
	hedge := flag.Duration("hedge-after", 0, "duplicate a node request on another replica when still outstanding after this long; fastest response wins (0 = no hedging)")
	retries := flag.Int("retries", 2, "per-shard retry budget beyond the first attempt; each retry prefers a different replica")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "base delay before a retry, doubling per attempt")
	inflight := flag.Int("max-inflight-inserts", 4, "admitted insert batches before new ones get HTTP 429 (backpressure)")
	health := flag.Duration("health-interval", 5*time.Second, "background node health-check period (0 = disabled)")
	par := flag.Int("parallelism", -1, "batch-query fan-out workers (-1 = one per CPU)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this private address (e.g. localhost:6061; empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "record routed requests slower than this in the slow-query log at GET /api/slowlog (0 = disabled)")
	flag.Parse()
	if *topoPath == "" {
		log.Fatal("coconut-router: -topology is required")
	}
	if *retries < 0 || *retries > 16 {
		log.Fatalf("coconut-router: -retries must be in [0, 16], got %d", *retries)
	}
	if *inflight < 1 || *inflight > 1024 {
		log.Fatalf("coconut-router: -max-inflight-inserts must be in [1, 1024], got %d", *inflight)
	}

	topo, err := cluster.LoadTopology(*topoPath)
	if err != nil {
		log.Fatalf("coconut-router: %v", err)
	}
	r, err := cluster.New(topo, cluster.Options{
		Timeout:            *timeout,
		HedgeAfter:         *hedge,
		Retries:            *retries,
		Backoff:            *backoff,
		MaxInflightInserts: *inflight,
		HealthInterval:     *health,
		Parallelism:        *par,
	})
	if err != nil {
		log.Fatalf("coconut-router: %v", err)
	}
	log.Printf("coconut-router: verified %d node(s), %d shard(s), replication >= %d, count %d",
		len(topo.Nodes), topo.Shards, topo.MinReplication(), r.Count())
	r.SetSlowQuery(*slowQuery)
	if *pprofAddr != "" {
		psrv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("coconut-router: pprof: %v", err)
		}
		defer psrv.Close()
		log.Printf("coconut-router: pprof listening on %s", *pprofAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("coconut-router listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("coconut-router: shutting down (in-flight queries drain)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("coconut-router: HTTP shutdown: %v", err)
		}
	}
	r.Close()
}
