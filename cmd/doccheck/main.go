// Command doccheck validates the repository's markdown documentation:
// every relative link and image reference in the given files must point at
// a file or directory that exists, and every intra-document or
// cross-document #fragment must match a heading anchor in its target.
// External links (http/https/mailto) are not fetched — CI must not depend
// on the network — but their URLs must at least parse.
//
// Usage:
//
//	doccheck README.md docs/*.md
//
// Exit status is non-zero if any reference is broken, with one line per
// problem: file:line: message.
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repo and skipped.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings; setext headings are not used here.
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: doccheck <file.md> [file.md ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	problems := 0
	anchors := map[string]map[string]bool{} // file -> set of heading anchors
	for _, f := range flag.Args() {
		if _, err := anchorsOf(anchors, f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f, err)
			problems++
		}
	}
	for _, f := range flag.Args() {
		problems += checkFile(f, anchors)
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken reference(s)\n", problems)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) clean\n", flag.NArg())
}

// anchorsOf loads (and caches) the set of GitHub-style heading anchors in
// a markdown file.
func anchorsOf(cache map[string]map[string]bool, path string) (map[string]bool, error) {
	if a, ok := cache[path]; ok {
		return a, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			a[slugify(m[2])] = true
		}
	}
	cache[path] = a
	return a, nil
}

// slugify reproduces GitHub's heading-anchor algorithm closely enough for
// this repository: lowercase, strip everything but letters/digits/space/
// hyphen, spaces to hyphens. Inline code/emphasis markers are dropped.
func slugify(h string) string {
	h = strings.ToLower(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r == '-', r == '_':
			b.WriteRune(r)
		}
	}
	return b.String()
}

func checkFile(path string, anchors map[string]map[string]bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	problems := 0
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			if msg := checkTarget(path, dir, m[1], anchors); msg != "" {
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, i+1, msg)
				problems++
			}
		}
	}
	return problems
}

func checkTarget(src, dir, target string, anchors map[string]map[string]bool) string {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") {
		if _, err := url.Parse(target); err != nil {
			return fmt.Sprintf("unparseable URL %q: %v", target, err)
		}
		return ""
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := src
	if file != "" {
		resolved = filepath.Join(dir, file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag != "" && strings.HasSuffix(resolved, ".md") {
		a, err := anchorsOf(anchors, resolved)
		if err != nil {
			return fmt.Sprintf("link %q: cannot read target: %v", target, err)
		}
		if !a[frag] {
			return fmt.Sprintf("link %q: no heading anchor #%s in %s", target, frag, resolved)
		}
	}
	return ""
}
