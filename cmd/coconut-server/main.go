// Command coconut-server runs the Coconut Palm algorithms server (Figure 1
// of the demo paper): a REST/JSON web service exposing dataset generation,
// index construction across all variants, approximate/exact windowed
// queries, the recommender, and heat-map access-pattern visualization.
//
// Usage:
//
//	coconut-server -addr :8734
//
// Then, for example:
//
//	curl -s localhost:8734/api/health
//	curl -s -X POST localhost:8734/api/datasets -d '{"kind":"astronomy","n":10000,"len":256}'
//	curl -s -X POST localhost:8734/api/build -d '{"dataset":"ds-1","variant":"CTree"}'
//	curl -s -X POST localhost:8734/api/recommend -d '{"streaming":true,"small_windows":true}'
//
// The server shuts down gracefully on SIGINT or SIGTERM: the listener
// stops, in-flight requests drain, and every build's background machinery
// (WALs, compaction workers, file-backed storage) flushes and closes.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8734", "listen address")
	// Serial by default so out-of-the-box build and query I/O accounting
	// reproduces the paper's single-stream numbers; opt into the parallel
	// engine per server (-parallelism) or per build request.
	par := flag.Int("parallelism", 1, "default per-query worker pool size for builds (1 = serial, matching the paper's accounting; -1 = one worker per CPU)")
	shards := flag.Int("shards", 0, "default shard count for builds (0 or 1 = unsharded; N > 1 hash-partitions each build across N shards, queries fan across them)")
	cache := flag.Int64("cache", 0, "default buffer-pool size in bytes for builds (0 = uncached, the paper-faithful accounting; N > 0 serves hot pages from a shared cache and charges only misses)")
	walRoot := flag.String("wal", "", "WAL root directory: each CLSM build keeps a write-ahead log in its own subdirectory, making POST /api/insert durable (empty = no WALs)")
	compactWorkers := flag.Int("compact-workers", 0, "default background-merge workers for CLSM builds (0 = inline merges; N > 0 runs level merges off the insert path)")
	storageRoot := flag.String("storage", "", "storage root directory: builds default to the file-backed page store, each in its own subdirectory; results are byte-identical to the simulated disk (empty = simulated disk only)")
	planCache := flag.Int("plan-cache", 0, "default plan-cache entries for builds (0 = no cache; N > 0 lets repeated query shapes reuse their pruning tables)")
	noPlanner := flag.Bool("no-planner", false, "disable statistics-driven probe ordering and skipping for builds; answers are byte-identical either way, only I/O cost changes")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this private address (e.g. localhost:6060; empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "record queries and inserts slower than this in the slow-query log at GET /api/slowlog (0 = disabled)")
	flag.Parse()
	// Reject bad defaults at startup: otherwise every build request that
	// leaves the field unset would fail with a 400 blaming the client.
	if *shards < 0 || *shards > 256 {
		log.Fatalf("coconut-server: -shards must be in [0, 256] (0 or 1 = unsharded), got %d", *shards)
	}
	if *cache < 0 || *cache > 1<<32 {
		log.Fatalf("coconut-server: -cache must be in [0, %d] bytes (0 = uncached), got %d", int64(1)<<32, *cache)
	}
	if *compactWorkers < 0 || *compactWorkers > 64 {
		log.Fatalf("coconut-server: -compact-workers must be in [0, 64], got %d", *compactWorkers)
	}
	if *planCache < 0 || *planCache > 1<<20 {
		log.Fatalf("coconut-server: -plan-cache must be in [0, %d] entries (0 = no cache), got %d", 1<<20, *planCache)
	}

	s := server.New()
	s.SetDefaultParallelism(*par)
	s.SetDefaultShards(*shards)
	s.SetDefaultCacheBytes(*cache)
	s.SetWALRoot(*walRoot)
	s.SetDefaultCompactionWorkers(*compactWorkers)
	s.SetStorageRoot(*storageRoot)
	s.SetDefaultPlanCache(*planCache)
	s.SetDefaultPlannerDisabled(*noPlanner)
	s.SetSlowQuery(*slowQuery)
	if *pprofAddr != "" {
		psrv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("coconut-server: pprof: %v", err)
		}
		defer psrv.Close()
		log.Printf("coconut-server: pprof listening on %s", *pprofAddr)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("coconut-palm algorithms server listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("coconut-server: shutting down (in-flight requests drain, builds flush)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("coconut-server: HTTP shutdown: %v", err)
		}
	}
	// Close builds after the listener stops: WALs sync, compaction workers
	// drain, file-backed storage fsyncs. Durable state survives restart.
	if err := s.Close(); err != nil {
		log.Printf("coconut-server: closing builds: %v", err)
	}
}
