// Command coconut-bench regenerates every experiment table and figure of
// the reproduction (see DESIGN.md section 5 and EXPERIMENTS.md).
//
// Usage:
//
//	coconut-bench                 # run everything at the default scale
//	coconut-bench -exp E1,E6      # run selected experiments
//	coconut-bench -quick          # reduced sizes for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/simd"
	"repro/internal/workload"
)

// knownExperiments lists every experiment id -exp accepts, in run order.
var knownExperiments = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
	"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids or 'all'; known: "+strings.Join(knownExperiments, ","))
		quick     = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		shards    = flag.String("shards", "", "comma-separated shard counts for the E13 sharding experiment (default 1,2,4,8)")
		cache     = flag.String("cache", "", "comma-separated cache sizes in KB for the E14 buffer-pool experiment, 0 = uncached (default 0,256,4096,65536)")
		workers   = flag.String("compact-workers", "", "comma-separated background-merge worker counts for the E15 ingest experiment, 0 = inline (default 0,2)")
		storage   = flag.String("storage", "", "directory for the E16 storage-backend experiment's page files (default: a temp directory, removed afterwards)")
		planCache = flag.Int("plan-cache", -1, "plan-cache entries per experiment index build, 0 = no cache; also sizes the E17 planner experiment's cached rows when > 0 (default: 0 for E1-E16 builds, 64 for E17)")
		noPlanner = flag.Bool("no-planner", false, "disable statistics-driven probe ordering and skipping in every experiment build (E17, which A/B-tests the planner, is then skipped)")
		kernels   = flag.String("kernels", "", "force a distance-kernel implementation: avx2, neon, or scalar (default: auto-detect)")
		compress  = flag.Bool("compress", false, "store on-disk pages (tree leaves, LSM runs) in the packed encoding in every experiment build; results are identical, I/O cost drops")
	)
	flag.Parse()

	if *kernels != "" {
		if err := simd.Select(*kernels); err != nil {
			fmt.Fprintf(os.Stderr, "coconut-bench: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Printf("distance kernels: %s; compressed runs: %v\n", simd.Active(), *compress)
	if *compress {
		workload.CompressDefault(true)
	}

	cfg := workload.DefaultRunConfig()
	if *quick {
		cfg.E1Sizes = []int{1000, 2000}
		cfg.E2N, cfg.E2Queries = 2000, 10
		cfg.E3N = 2000
		cfg.E4N = 2000
		cfg.E5N, cfg.E5Inserts, cfg.E5Queries = 2000, 200, 10
		cfg.E6Batches, cfg.E6BatchSize, cfg.E6Queries = 20, 50, 4
		cfg.E7N, cfg.E7Queries = 2000, 5
		cfg.E9Sizes = []int{1000, 2000}
		cfg.E13N, cfg.E13Queries = 2000, 16
		cfg.E13Shards = []int{1, 2, 4}
		cfg.E14N, cfg.E14Queries = 2000, 8
		cfg.E14CacheKB = []int{0, 64, 4096}
		cfg.E15N, cfg.E15Queries = 2000, 4
		cfg.E16N, cfg.E16Queries = 2000, 4
		cfg.E17N, cfg.E17Queries = 2000, 8
		cfg.E17Repeats, cfg.E17PlanCache = 3, 16
	}
	cfg.E16Dir = *storage
	if *shards != "" {
		var counts []int
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				// A shard count of 0 or less is meaningless — reject loudly
				// rather than building a degenerate experiment.
				fmt.Fprintf(os.Stderr, "coconut-bench: -shards values must be positive integers, got %q\n", part)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		cfg.E13Shards = counts
	}
	if *cache != "" {
		var sizes []int
		for _, part := range strings.Split(*cache, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "coconut-bench: -cache values must be >= 0 KB (0 = uncached), got %q\n", part)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
		cfg.E14CacheKB = sizes
	}
	if *workers != "" {
		var counts []int
		for _, part := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "coconut-bench: -compact-workers values must be >= 0 (0 = inline), got %q\n", part)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		cfg.E15Workers = counts
	}

	if *planCache != -1 {
		if *planCache < 0 {
			fmt.Fprintf(os.Stderr, "coconut-bench: -plan-cache must be >= 0 entries (0 = no cache), got %d\n", *planCache)
			os.Exit(2)
		}
		workload.PlannerDefaults(*noPlanner, *planCache)
		if *planCache > 0 {
			cfg.E17PlanCache = *planCache
		}
	} else if *noPlanner {
		workload.PlannerDefaults(true, 0)
	}

	known := map[string]bool{}
	for _, id := range knownExperiments {
		known[id] = true
	}
	want := map[string]bool{}
	if *expFlag == "all" {
		for _, id := range knownExperiments {
			want[id] = true
		}
		if *noPlanner {
			// E17 A/B-tests the planner; with planning globally off its
			// planner-on arm would silently measure nothing.
			delete(want, "E17")
			fmt.Fprintln(os.Stderr, "coconut-bench: -no-planner set; skipping E17 (it A/B-tests the planner)")
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if !known[id] {
				fmt.Fprintf(os.Stderr, "coconut-bench: unknown experiment %q (known: %s)\n", id, strings.Join(knownExperiments, ", "))
				os.Exit(2)
			}
			want[id] = true
		}
		if *noPlanner && want["E17"] {
			fmt.Fprintln(os.Stderr, "coconut-bench: -no-planner conflicts with -exp E17 (the experiment A/B-tests the planner)")
			os.Exit(2)
		}
	}

	if err := run(cfg, want); err != nil {
		fmt.Fprintf(os.Stderr, "coconut-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg workload.RunConfig, want map[string]bool) error {
	sc := cfg.Scale
	emit := func(t *workload.Table) { fmt.Println(t.String()) }

	if want["E1"] {
		t, err := workload.E1Construction(sc, cfg.E1Sizes)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E2"] {
		t, err := workload.E2Query(sc, cfg.E2N, cfg.E2Queries)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E3"] {
		t, err := workload.E3Materialization(cfg.E3Scale, cfg.E3N, cfg.E3Counts)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E4"] {
		t, err := workload.E4Memory(sc, cfg.E4N, cfg.E4Fracs)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E5"] {
		t, err := workload.E5FillFactor(cfg.E5Scale, cfg.E5N, cfg.E5Inserts, cfg.E5Queries, cfg.E5Fills)
		if err != nil {
			return err
		}
		emit(t)
		t, err = workload.E5GrowthFactor(sc, cfg.E5N, cfg.E5Queries, cfg.E5Growths)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E6"] {
		t, err := workload.E6Streaming(sc, cfg.E6Batches, cfg.E6BatchSize, cfg.E6Buffer, cfg.E6Queries)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E7"] {
		t, art, err := workload.E7Heatmap(sc, cfg.E7N, cfg.E7Queries)
		if err != nil {
			return err
		}
		emit(t)
		for _, line := range art {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if want["E8"] {
		emit(workload.E8Recommender())
	}
	if want["E9"] {
		t, err := workload.E9Storage(sc, cfg.E9Sizes)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E10"] {
		t, err := workload.E10Ablation(sc, cfg.E2N, 100, 64)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E11"] {
		t, err := workload.E11Cardinality(sc, cfg.E2N/2, 10, []int{1, 2, 4, 6, 8})
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E12"] {
		t, err := workload.E12Recall(sc, cfg.E2N/2, 50)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E13"] {
		t, err := workload.E13Sharding(sc, cfg.E13N, cfg.E13Queries, cfg.E13K, cfg.E13Shards)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E14"] {
		t, err := workload.E14CacheSweep(sc, cfg.E14N, cfg.E14Queries, cfg.E14K, cfg.E14CacheKB)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E15"] {
		t, err := workload.E15Ingest(sc, cfg.E15N, cfg.E15Queries, cfg.E15K, cfg.E15Workers)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E16"] {
		t, err := workload.E16Backend(sc, cfg.E16N, cfg.E16Queries, cfg.E16K, cfg.E16Dir)
		if err != nil {
			return err
		}
		emit(t)
	}
	if want["E17"] {
		t, err := workload.E17Planner(sc, cfg.E17N, cfg.E17Queries, cfg.E17K, cfg.E17Repeats, cfg.E17PlanCache)
		if err != nil {
			return err
		}
		emit(t)
	}
	return nil
}
