// Command coconut-loadgen drives a coconut-router (or a single
// coconut-server) with an open-loop query load and reports p50/p99
// latency. Before publishing any number it can assert distributed
// correctness: with -baseline it first replays probe queries against both
// the target and a reference endpoint and requires byte-identical answers
// (IDs, timestamps, and distance bit patterns) — if identity fails, no load
// numbers are produced.
//
// Usage:
//
//	coconut-loadgen -target http://localhost:8735 \
//	  -baseline http://localhost:8734 -baseline-build build-1 \
//	  -rate 200 -duration 15s
//
// The load phase is open-loop: queries launch on a fixed schedule
// regardless of completions, so a slow server accumulates concurrency and
// the measured latency includes queueing — no coordinated omission.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
)

func main() {
	target := flag.String("target", "", "endpoint under load: a coconut-router or coconut-server base URL (required)")
	baseline := flag.String("baseline", "", "reference endpoint for the byte-identity check (empty = skip the check)")
	baselineBuild := flag.String("baseline-build", "", "build ID on the baseline endpoint (required with -baseline)")
	targetBuild := flag.String("target-build", "", "build ID on the target (routers ignore it; set when the target is a plain coconut-server)")
	seriesLen := flag.Int("len", 0, "query series length (0 = discover from the target's /api/cluster/topology)")
	k := flag.Int("k", 10, "neighbors per query")
	exact := flag.Bool("exact", true, "exact queries (the distributed-identity guarantee; false = approximate)")
	identity := flag.Int("identity", 20, "probe queries in the identity phase (0 = skip; ignored without -baseline)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, queries/second")
	duration := flag.Duration("duration", 10*time.Second, "load phase length")
	seed := flag.Int64("seed", 42, "query-generation seed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	flag.Parse()
	if *target == "" {
		log.Fatal("coconut-loadgen: -target is required")
	}
	if *baseline != "" && *baselineBuild == "" {
		log.Fatal("coconut-loadgen: -baseline needs -baseline-build")
	}
	if *rate <= 0 || *rate > 100000 {
		log.Fatalf("coconut-loadgen: -rate must be in (0, 100000], got %g", *rate)
	}
	client := &http.Client{Timeout: *timeout}

	n := *seriesLen
	if n == 0 {
		var err error
		if n, err = discoverLen(client, *target); err != nil {
			log.Fatalf("coconut-loadgen: cannot discover series length (pass -len): %v", err)
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	mkQuery := func() []float64 { return []float64(gen.RandomWalk(rng, n)) }

	if *baseline != "" && *identity > 0 {
		if err := identityPhase(client, *target, *targetBuild, *baseline, *baselineBuild, *identity, *k, *exact, mkQuery); err != nil {
			log.Fatalf("coconut-loadgen: IDENTITY FAILED — refusing to publish load numbers: %v", err)
		}
		fmt.Printf("identity: %d/%d exact answers byte-identical to baseline\n", *identity, *identity)
	}

	lat, errs := loadPhase(client, *target, *targetBuild, *rate, *duration, *k, *exact, mkQuery)
	if len(lat) == 0 {
		log.Fatalf("coconut-loadgen: no successful queries (%d errors)", errs)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		return lat[i]
	}
	fmt.Printf("load: %d queries in %s (open loop at %g qps), %d errors\n",
		len(lat)+errs, duration.String(), *rate, errs)
	fmt.Printf("latency: p50 %s  p90 %s  p99 %s  max %s\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	if errs > 0 {
		os.Exit(1)
	}
}

// discoverLen asks a router for its topology; plain servers 404 here.
func discoverLen(client *http.Client, target string) (int, error) {
	resp, err := client.Get(target + "/api/cluster/topology")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", target, resp.Status)
	}
	var t struct {
		SeriesLen int `json:"series_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return 0, err
	}
	if t.SeriesLen < 1 {
		return 0, fmt.Errorf("topology reports series_len %d", t.SeriesLen)
	}
	return t.SeriesLen, nil
}

func query(client *http.Client, base, build string, q []float64, k int, exact bool) (*server.QueryResponse, error) {
	body, _ := json.Marshal(server.QueryRequest{Build: build, Series: q, K: k, Exact: exact})
	resp, err := client.Post(base+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	var out server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// identityPhase replays probe queries against target and baseline and
// requires byte-identical result lists: same IDs, same timestamps, and the
// same distance bit patterns (math.Float64bits, not approximate equality).
func identityPhase(client *http.Client, target, targetBuild, baseline, baselineBuild string,
	count, k int, exact bool, mkQuery func() []float64) error {
	for i := 0; i < count; i++ {
		qs := mkQuery()
		got, err := query(client, target, targetBuild, qs, k, exact)
		if err != nil {
			return fmt.Errorf("probe %d: target: %w", i, err)
		}
		want, err := query(client, baseline, baselineBuild, qs, k, exact)
		if err != nil {
			return fmt.Errorf("probe %d: baseline: %w", i, err)
		}
		if len(got.Results) != len(want.Results) {
			return fmt.Errorf("probe %d: %d results, baseline has %d", i, len(got.Results), len(want.Results))
		}
		for j := range got.Results {
			g, w := got.Results[j], want.Results[j]
			if g.ID != w.ID || g.TS != w.TS || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
				return fmt.Errorf("probe %d result %d: got (id %d, ts %d, dist %x), baseline (id %d, ts %d, dist %x)",
					i, j, g.ID, g.TS, math.Float64bits(g.Dist), w.ID, w.TS, math.Float64bits(w.Dist))
			}
		}
	}
	return nil
}

// loadPhase fires queries on a fixed open-loop schedule and collects
// per-query latencies. Query series are pre-generated so the generator's
// cost (and its shared rng) stays off the timed path.
func loadPhase(client *http.Client, target, build string, rate float64, duration time.Duration,
	k int, exact bool, mkQuery func() []float64) ([]time.Duration, int) {
	total := int(rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	queries := make([][]float64, total)
	for i := range queries {
		queries[i] = mkQuery()
	}
	interval := time.Duration(float64(time.Second) / rate)
	lat := make([]time.Duration, 0, total)
	errs := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		<-tick.C
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			start := time.Now()
			_, err := query(client, target, build, q, k, exact)
			d := time.Since(start)
			mu.Lock()
			if err != nil {
				errs++
			} else {
				lat = append(lat, d)
			}
			mu.Unlock()
		}(queries[i])
	}
	wg.Wait()
	return lat, errs
}
