// Command coconut-loadgen drives a coconut-router (or a single
// coconut-server) with an open-loop query load and reports p50/p99
// latency. Before publishing any number it can assert distributed
// correctness: with -baseline it first replays probe queries against both
// the target and a reference endpoint and requires byte-identical answers
// (IDs, timestamps, and distance bit patterns) — if identity fails, no load
// numbers are produced.
//
// Usage:
//
//	coconut-loadgen -target http://localhost:8735 \
//	  -baseline http://localhost:8734 -baseline-build build-1 \
//	  -rate 200 -duration 15s
//
// The load phase is open-loop: queries launch on a fixed schedule
// regardless of completions, so a slow server accumulates concurrency and
// the measured latency includes queueing — no coordinated omission.
//
// Beyond the quantile line, -hist prints the full latency histogram (the
// same exponential buckets the servers' /metrics use) and -json writes a
// machine-readable summary for benchmark artifacts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	target := flag.String("target", "", "endpoint under load: a coconut-router or coconut-server base URL (required)")
	baseline := flag.String("baseline", "", "reference endpoint for the byte-identity check (empty = skip the check)")
	baselineBuild := flag.String("baseline-build", "", "build ID on the baseline endpoint (required with -baseline)")
	targetBuild := flag.String("target-build", "", "build ID on the target (routers ignore it; set when the target is a plain coconut-server)")
	seriesLen := flag.Int("len", 0, "query series length (0 = discover from the target's /api/cluster/topology)")
	k := flag.Int("k", 10, "neighbors per query")
	exact := flag.Bool("exact", true, "exact queries (the distributed-identity guarantee; false = approximate)")
	identity := flag.Int("identity", 20, "probe queries in the identity phase (0 = skip; ignored without -baseline)")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, queries/second")
	duration := flag.Duration("duration", 10*time.Second, "load phase length")
	seed := flag.Int64("seed", 42, "query-generation seed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	hist := flag.Bool("hist", false, "print the full latency histogram (exponential buckets matching the servers' /metrics)")
	jsonPath := flag.String("json", "", "write a machine-readable JSON summary (quantiles + histogram) to this file ('-' = stdout)")
	flag.Parse()
	if *target == "" {
		log.Fatal("coconut-loadgen: -target is required")
	}
	if *baseline != "" && *baselineBuild == "" {
		log.Fatal("coconut-loadgen: -baseline needs -baseline-build")
	}
	if *rate <= 0 || *rate > 100000 {
		log.Fatalf("coconut-loadgen: -rate must be in (0, 100000], got %g", *rate)
	}
	client := &http.Client{Timeout: *timeout}

	n := *seriesLen
	if n == 0 {
		var err error
		if n, err = discoverLen(client, *target); err != nil {
			log.Fatalf("coconut-loadgen: cannot discover series length (pass -len): %v", err)
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	mkQuery := func() []float64 { return []float64(gen.RandomWalk(rng, n)) }

	if *baseline != "" && *identity > 0 {
		if err := identityPhase(client, *target, *targetBuild, *baseline, *baselineBuild, *identity, *k, *exact, mkQuery); err != nil {
			log.Fatalf("coconut-loadgen: IDENTITY FAILED — refusing to publish load numbers: %v", err)
		}
		fmt.Printf("identity: %d/%d exact answers byte-identical to baseline\n", *identity, *identity)
	}

	lat, errs := loadPhase(client, *target, *targetBuild, *rate, *duration, *k, *exact, mkQuery)
	if len(lat) == 0 {
		log.Fatalf("coconut-loadgen: no successful queries (%d errors)", errs)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		return lat[i]
	}
	fmt.Printf("load: %d queries in %s (open loop at %g qps), %d errors\n",
		len(lat)+errs, duration.String(), *rate, errs)
	fmt.Printf("latency: p50 %s  p90 %s  p99 %s  max %s\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	buckets := latencyHistogram(lat)
	if *hist {
		printHistogram(buckets, len(lat))
	}
	if *jsonPath != "" {
		if err := writeSummary(*jsonPath, summary{
			Target:          *target,
			RateQPS:         *rate,
			DurationSeconds: duration.Seconds(),
			K:               *k,
			Exact:           *exact,
			SeriesLen:       n,
			Queries:         len(lat) + errs,
			Errors:          errs,
			LatencyMicros: quantiles{
				P50:  q(0.50).Microseconds(),
				P90:  q(0.90).Microseconds(),
				P99:  q(0.99).Microseconds(),
				Max:  lat[len(lat)-1].Microseconds(),
				Mean: meanMicros(lat),
			},
			Histogram: buckets,
		}); err != nil {
			log.Fatalf("coconut-loadgen: writing -json summary: %v", err)
		}
	}
	if errs > 0 {
		os.Exit(1)
	}
}

// summary is the machine-readable benchmark artifact written by -json.
type summary struct {
	Target          string    `json:"target"`
	RateQPS         float64   `json:"rate_qps"`
	DurationSeconds float64   `json:"duration_seconds"`
	K               int       `json:"k"`
	Exact           bool      `json:"exact"`
	SeriesLen       int       `json:"series_len"`
	Queries         int       `json:"queries"`
	Errors          int       `json:"errors"`
	LatencyMicros   quantiles `json:"latency_micros"`
	Histogram       []bucket  `json:"histogram"`
}

type quantiles struct {
	P50  int64 `json:"p50"`
	P90  int64 `json:"p90"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	Mean int64 `json:"mean"`
}

// bucket is one cumulative histogram bucket: Count observations took
// LeSeconds or less, Prometheus le-style (the final bucket is +Inf,
// serialized as le_seconds 0 with All set).
type bucket struct {
	LeSeconds float64 `json:"le_seconds,omitempty"`
	All       bool    `json:"all,omitempty"`
	Count     int64   `json:"count"`
}

// latencyHistogram buckets the sorted latencies into the same exponential
// grid the servers' /metrics histograms use, cumulative counts.
func latencyHistogram(lat []time.Duration) []bucket {
	uppers := obs.LatencyBuckets()
	out := make([]bucket, 0, len(uppers)+1)
	i := 0
	for _, up := range uppers {
		for i < len(lat) && lat[i].Seconds() <= up {
			i++
		}
		out = append(out, bucket{LeSeconds: up, Count: int64(i)})
	}
	out = append(out, bucket{All: true, Count: int64(len(lat))})
	return out
}

// printHistogram renders the non-empty buckets with a proportional bar.
func printHistogram(buckets []bucket, total int) {
	fmt.Println("histogram:")
	prev := int64(0)
	for _, b := range buckets {
		inBucket := b.Count - prev
		prev = b.Count
		if inBucket == 0 {
			continue
		}
		label := "+Inf"
		if !b.All {
			label = time.Duration(b.LeSeconds * float64(time.Second)).String()
		}
		bar := strings.Repeat("#", int(math.Ceil(40*float64(inBucket)/float64(total))))
		fmt.Printf("  le %-10s %6d %s\n", label, inBucket, bar)
	}
}

func meanMicros(lat []time.Duration) int64 {
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return (sum / time.Duration(len(lat))).Microseconds()
}

func writeSummary(path string, s summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// discoverLen asks a router for its topology; plain servers 404 here.
func discoverLen(client *http.Client, target string) (int, error) {
	resp, err := client.Get(target + "/api/cluster/topology")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", target, resp.Status)
	}
	var t struct {
		SeriesLen int `json:"series_len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return 0, err
	}
	if t.SeriesLen < 1 {
		return 0, fmt.Errorf("topology reports series_len %d", t.SeriesLen)
	}
	return t.SeriesLen, nil
}

func query(client *http.Client, base, build string, q []float64, k int, exact bool) (*server.QueryResponse, error) {
	body, _ := json.Marshal(server.QueryRequest{Build: build, Series: q, K: k, Exact: exact})
	resp, err := client.Post(base+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	var out server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// identityPhase replays probe queries against target and baseline and
// requires byte-identical result lists: same IDs, same timestamps, and the
// same distance bit patterns (math.Float64bits, not approximate equality).
func identityPhase(client *http.Client, target, targetBuild, baseline, baselineBuild string,
	count, k int, exact bool, mkQuery func() []float64) error {
	for i := 0; i < count; i++ {
		qs := mkQuery()
		got, err := query(client, target, targetBuild, qs, k, exact)
		if err != nil {
			return fmt.Errorf("probe %d: target: %w", i, err)
		}
		want, err := query(client, baseline, baselineBuild, qs, k, exact)
		if err != nil {
			return fmt.Errorf("probe %d: baseline: %w", i, err)
		}
		if len(got.Results) != len(want.Results) {
			return fmt.Errorf("probe %d: %d results, baseline has %d", i, len(got.Results), len(want.Results))
		}
		for j := range got.Results {
			g, w := got.Results[j], want.Results[j]
			if g.ID != w.ID || g.TS != w.TS || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
				return fmt.Errorf("probe %d result %d: got (id %d, ts %d, dist %x), baseline (id %d, ts %d, dist %x)",
					i, j, g.ID, g.TS, math.Float64bits(g.Dist), w.ID, w.TS, math.Float64bits(w.Dist))
			}
		}
	}
	return nil
}

// loadPhase fires queries on a fixed open-loop schedule and collects
// per-query latencies. Query series are pre-generated so the generator's
// cost (and its shared rng) stays off the timed path.
func loadPhase(client *http.Client, target, build string, rate float64, duration time.Duration,
	k int, exact bool, mkQuery func() []float64) ([]time.Duration, int) {
	total := int(rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	queries := make([][]float64, total)
	for i := range queries {
		queries[i] = mkQuery()
	}
	interval := time.Duration(float64(time.Second) / rate)
	lat := make([]time.Duration, 0, total)
	errs := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		<-tick.C
		wg.Add(1)
		go func(q []float64) {
			defer wg.Done()
			start := time.Now()
			_, err := query(client, target, build, q, k, exact)
			d := time.Since(start)
			mu.Lock()
			if err != nil {
				errs++
			} else {
				lat = append(lat, d)
			}
			mu.Unlock()
		}(queries[i])
	}
	wg.Wait()
	return lat, errs
}
