package coconut

import (
	"math/rand"
	"testing"
)

// These tests pin the buffer-pool layer's core contract: a cache between
// the indexes and the disk may change I/O accounting and wall-clock time,
// but never answers. Every query below runs against an uncached index and
// a cached one (twice — cold and warm, so both the miss-fill path and the
// borrowed-frame hit path are exercised) and must match byte for byte, on
// exact, range, and windowed searches, for Tree, LSM, and Sharded at shard
// counts 1 and 4.

const cacheEquivBytes = 16 << 20

func cacheEquivData(n, length int, seed int64) ([][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	walk := func() []float64 {
		s := make([]float64, length)
		v := 0.0
		for i := range s {
			v += rng.NormFloat64()
			s[i] = v
		}
		return s
	}
	data := make([][]float64, n)
	for i := range data {
		data[i] = walk()
	}
	queries := make([][]float64, 12)
	for i := range queries {
		queries[i] = walk()
	}
	return data, queries
}

func sameMatches(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d results", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s result %d: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

// searcher is the query surface shared by Tree, LSM, and Sharded facades.
type equivSearcher interface {
	Search(q []float64, k int) ([]Match, error)
	SearchRange(q []float64, eps float64) ([]Match, error)
}

// checkCachedEquiv runs the full query matrix against the uncached
// reference and the cached index, cold then warm.
func checkCachedEquiv(t *testing.T, label string, queries [][]float64, plain, cached equivSearcher) {
	t.Helper()
	for _, q := range queries {
		wantK, err := plain.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		eps := 1.0
		if len(wantK) > 2 {
			eps = wantK[2].Dist // guarantees a non-trivial range answer
		}
		wantR, err := plain.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			gotK, err := cached.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/exact/"+pass, wantK, gotK)
			gotR, err := cached.SearchRange(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/range/"+pass, wantR, gotR)
		}
	}
}

func TestCachedTreeEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 1)
	for _, mat := range []bool{false, true} {
		opts := Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: mat}
		plain, err := BuildTree(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.CacheBytes = cacheEquivBytes
		cached, err := BuildTree(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		label := map[bool]string{false: "tree", true: "treefull"}[mat]
		checkCachedEquiv(t, label, queries, plain, cached)
		if st := cached.Stats(); st.CacheHits == 0 {
			t.Fatalf("%s: cached run recorded no hits (%+v)", label, st)
		}
		if st := plain.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
			t.Fatalf("uncached %s reports cache traffic (%+v)", label, st)
		}
	}
}

func TestCachedLSMEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 2)
	build := func(cacheBytes int64) *LSM {
		l, err := NewLSM(Options{
			SeriesLen: 64, Segments: 8, Bits: 6,
			BufferEntries: 256, GrowthFactor: 3, CacheBytes: cacheBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return l
	}
	plain := build(0)
	cached := build(cacheEquivBytes)
	checkCachedEquiv(t, "lsm", queries, plain, cached)
	// Windowed queries through the cache.
	for _, q := range queries[:4] {
		want, err := plain.SearchWindow(q, 5, 500, 2200)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			got, err := cached.SearchWindow(q, 5, 500, 2200)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, "lsm/window/"+pass, want, got)
		}
	}
	if st := cached.Stats(); st.CacheHits == 0 {
		t.Fatalf("cached LSM recorded no hits (%+v)", st)
	}
}

func TestCachedShardedEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 3)
	opts := Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: true}
	plainTree, err := BuildTree(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		plainSharded, err := BuildShardedTree(data, shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		cachedOpts := opts
		cachedOpts.CacheBytes = cacheEquivBytes
		cached, err := BuildShardedTree(data, shards, cachedOpts)
		if err != nil {
			t.Fatal(err)
		}
		label := map[int]string{1: "sharded1", 4: "sharded4"}[shards]
		// Against the uncached unsharded tree (the strongest reference) and
		// windowed against the uncached sharded twin.
		checkCachedEquiv(t, label, queries, plainTree, cached)
		for _, q := range queries[:4] {
			want, err := plainSharded.SearchWindow(q, 5, 100, 2500)
			if err != nil {
				t.Fatal(err)
			}
			for _, pass := range []string{"cold", "warm"} {
				got, err := cached.SearchWindow(q, 5, 100, 2500)
				if err != nil {
					t.Fatal(err)
				}
				sameMatches(t, label+"/window/"+pass, want, got)
			}
		}
		if st := cached.Stats(); st.CacheHits == 0 {
			t.Fatalf("%s recorded no hits (%+v)", label, st)
		}
		if shards == 4 {
			per := cached.ShardStats()
			if len(per) != 4 {
				t.Fatalf("%d shard stats, want 4", len(per))
			}
			var hits int64
			for _, st := range per {
				hits += st.CacheHits
			}
			if hits != cached.Stats().CacheHits {
				t.Fatalf("per-shard hits %d != aggregate %d", hits, cached.Stats().CacheHits)
			}
		}
	}
}

// TestCachedStreamEquivalence covers the TP and BTP streaming schemes: the
// partition probes ride the same PageReader plumbing.
func TestCachedStreamEquivalence(t *testing.T) {
	data, queries := cacheEquivData(1500, 64, 4)
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		build := func(cacheBytes int64) *Stream {
			s, err := NewStream(kind, Options{
				SeriesLen: 64, Segments: 8, Bits: 6,
				BufferEntries: 200, CacheBytes: cacheBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, ser := range data {
				if _, err := s.Ingest(ser, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			return s
		}
		plain := build(0)
		cached := build(cacheEquivBytes)
		for _, q := range queries[:6] {
			want, err := plain.SearchWindow(q, 3, 100, 1300)
			if err != nil {
				t.Fatal(err)
			}
			for _, pass := range []string{"cold", "warm"} {
				got, err := cached.SearchWindow(q, 3, 100, 1300)
				if err != nil {
					t.Fatal(err)
				}
				sameMatches(t, string(kind)+"/window/"+pass, want, got)
			}
		}
		if st := cached.Stats(); st.CacheHits == 0 {
			t.Fatalf("%s: cached stream recorded no hits (%+v)", kind, st)
		}
	}
}
