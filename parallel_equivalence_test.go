package coconut

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Serial-vs-parallel equivalence: for every index and streaming scheme,
// Parallelism: 1 and Parallelism: 8 must return identical results — same
// IDs, same timestamps, bit-identical distances — on seeded random
// workloads. This is the determinism guarantee of the parallel query
// engine, and under -race (see .github/workflows/ci.yml) it doubles as the
// race test for the concurrent probing paths: 8 workers on the same pool
// interleave even on one CPU.

func seededWalks(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

func matchesEqual(t *testing.T, label string, serial, par []Match) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: serial returned %d results, parallel %d\nserial: %v\nparallel: %v",
			label, len(serial), len(par), serial, par)
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("%s: result %d differs: serial %+v vs parallel %+v", label, i, serial[i], par[i])
		}
	}
}

func TestParallelEquivalenceTree(t *testing.T) {
	const n, length = 3000, 96
	data := seededWalks(n, length, 101)
	queries := seededWalks(20, length, 102)
	build := func(par int) *Tree {
		tr, err := BuildTree(data, Options{SeriesLen: length, Parallelism: par, FillFactor: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial, par := build(1), build(8)
	for qi, q := range queries {
		for _, k := range []int{1, 5, 17} {
			s, err := serial.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			p, err := par.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("tree exact q%d k%d", qi, k), s, p)

			s, err = serial.SearchApprox(q, k)
			if err != nil {
				t.Fatal(err)
			}
			p, err = par.SearchApprox(q, k)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("tree approx q%d k%d", qi, k), s, p)
		}
		// Pick an epsilon that catches a non-trivial neighborhood.
		probe, err := serial.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		eps := probe[len(probe)-1].Dist
		s, err := serial.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		p, err := par.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, fmt.Sprintf("tree range q%d", qi), s, p)
	}
}

func TestParallelEquivalenceLSM(t *testing.T) {
	const n, length = 3000, 96
	data := seededWalks(n, length, 201)
	queries := seededWalks(20, length, 202)
	build := func(par int) *LSM {
		// Small buffer and high growth factor: many runs to probe.
		l, err := NewLSM(Options{SeriesLen: length, Parallelism: par, BufferEntries: 128, GrowthFactor: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	serial, par := build(1), build(8)
	if serial.Runs() < 4 {
		t.Fatalf("workload too small: only %d runs", serial.Runs())
	}
	for qi, q := range queries {
		for _, k := range []int{1, 5} {
			s, err := serial.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			p, err := par.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("lsm exact q%d k%d", qi, k), s, p)

			s, err = serial.SearchApprox(q, k)
			if err != nil {
				t.Fatal(err)
			}
			p, err = par.SearchApprox(q, k)
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, fmt.Sprintf("lsm approx q%d k%d", qi, k), s, p)
		}
		s, err := serial.SearchWindow(q, 3, int64(n/4), int64(3*n/4))
		if err != nil {
			t.Fatal(err)
		}
		p, err := par.SearchWindow(q, 3, int64(n/4), int64(3*n/4))
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, fmt.Sprintf("lsm window q%d", qi), s, p)

		probe, err := serial.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		eps := probe[len(probe)-1].Dist
		s, err = serial.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		p, err = par.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matchesEqual(t, fmt.Sprintf("lsm range q%d", qi), s, p)
	}
}

func TestParallelEquivalenceStreams(t *testing.T) {
	const n, length = 2500, 96
	data := seededWalks(n, length, 301)
	queries := seededWalks(12, length, 302)
	windows := [][2]int64{
		{0, int64(n - 1)},            // everything
		{int64(n - 200), int64(n)},   // recent
		{int64(n / 3), int64(n / 2)}, // middle slice
	}
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		t.Run(string(kind), func(t *testing.T) {
			build := func(par int) *Stream {
				st, err := NewStream(kind, Options{SeriesLen: length, Parallelism: par, BufferEntries: 256})
				if err != nil {
					t.Fatal(err)
				}
				for i, s := range data {
					if _, err := st.Ingest(s, int64(i)); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Seal(); err != nil {
					t.Fatal(err)
				}
				return st
			}
			serial, par := build(1), build(8)
			if kind != PP && serial.Partitions() < 2 {
				t.Fatalf("workload too small: %d partitions", serial.Partitions())
			}
			for qi, q := range queries {
				s, err := serial.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				p, err := par.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, fmt.Sprintf("%s full q%d", kind, qi), s, p)
				for wi, w := range windows {
					s, err := serial.SearchWindow(q, 5, w[0], w[1])
					if err != nil {
						t.Fatal(err)
					}
					p, err := par.SearchWindow(q, 5, w[0], w[1])
					if err != nil {
						t.Fatal(err)
					}
					matchesEqual(t, fmt.Sprintf("%s window%d q%d", kind, wi, qi), s, p)

					s, err = serial.SearchApprox(q, 5, w[0], w[1])
					if err != nil {
						t.Fatal(err)
					}
					p, err = par.SearchApprox(q, 5, w[0], w[1])
					if err != nil {
						t.Fatal(err)
					}
					matchesEqual(t, fmt.Sprintf("%s approx window%d q%d", kind, wi, qi), s, p)
				}
			}
		})
	}
}

// TestConcurrentSearches drives many goroutines through the same completed
// indexes at once — the server's serving pattern. Search paths allocate
// their own scratch buffers, so concurrent queries must neither race (the
// CI run is under -race) nor perturb each other's answers.
func TestConcurrentSearches(t *testing.T) {
	const n, length = 1500, 64
	data := seededWalks(n, length, 401)
	queries := seededWalks(16, length, 402)

	tr, err := BuildTree(data, Options{SeriesLen: length, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	lsm, err := NewLSM(Options{SeriesLen: length, Parallelism: 4, BufferEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := lsm.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	wantTree := make([][]Match, len(queries))
	wantLSM := make([][]Match, len(queries))
	for i, q := range queries {
		if wantTree[i], err = tr.Search(q, 3); err != nil {
			t.Fatal(err)
		}
		if wantLSM[i], err = lsm.Search(q, 3); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				qi := (g + round*3) % len(queries)
				got, err := tr.Search(queries[qi], 3)
				if err != nil {
					errCh <- err
					return
				}
				for i := range got {
					if got[i] != wantTree[qi][i] {
						errCh <- fmt.Errorf("tree q%d: concurrent result %+v != %+v", qi, got[i], wantTree[qi][i])
						return
					}
				}
				got, err = lsm.Search(queries[qi], 3)
				if err != nil {
					errCh <- err
					return
				}
				for i := range got {
					if got[i] != wantLSM[qi][i] {
						errCh <- fmt.Errorf("lsm q%d: concurrent result %+v != %+v", qi, got[i], wantLSM[qi][i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
