// Benchmarks of the durable ingest subsystem: what the WAL costs at insert
// time (group commit vs per-insert fsync vs no log), and what searches cost
// while background merges are running. Both feed the CI bench gate.
package coconut

import (
	"math/rand"
	"testing"
)

// benchIngestData generates one reusable insert stream.
func benchIngestData(n int) [][]float64 {
	rng := rand.New(rand.NewSource(1234))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, 64)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

// BenchmarkIngest measures LSM insert throughput with the WAL off, group
// committed, and strictly synced. series/op divides out the stream length
// so the modes compare directly.
func BenchmarkIngest(b *testing.B) {
	data := benchIngestData(2000)
	for _, mode := range []struct {
		name       string
		durable    bool
		durability Durability
	}{
		{"wal=off", false, ""},
		{"wal=batched", true, DurabilityBatched},
		{"wal=sync", true, DurabilitySync},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := Options{
					SeriesLen: 64, Segments: 8, Bits: 8,
					BufferEntries: 256, GrowthFactor: 4, Parallelism: 1,
					Durability: mode.durability,
				}
				if mode.durable {
					opts.WALDir = b.TempDir()
				}
				l, err := NewLSM(opts)
				if err != nil {
					b.Fatal(err)
				}
				for j, s := range data {
					if err := l.Insert(s, int64(j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(data))*float64(b.N)/b.Elapsed().Seconds(), "series/s")
		})
	}
}

// BenchmarkSearchDuringCompaction measures exact search latency while a
// writer goroutine keeps the background merge machinery busy — the pinned
// manifest read path under live structural churn. The byte-identity of the
// answers is the race tests' business; this benchmark watches the cost.
func BenchmarkSearchDuringCompaction(b *testing.B) {
	data := benchIngestData(3000)
	opts := Options{
		SeriesLen: 64, Segments: 8, Bits: 8,
		BufferEntries: 128, GrowthFactor: 3, Parallelism: 1,
		CompactionWorkers: 1,
	}
	l, err := NewLSM(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for i, s := range data[:2000] {
		if err := l.Insert(s, 0); err != nil {
			b.Fatal(err)
		}
		_ = i
	}
	if err := l.Quiesce(); err != nil {
		b.Fatal(err)
	}
	// Churn writer: a bounded stream of ts=1 inserts drives flushes and
	// background merges through the measurement window (bounded so the
	// index size — and with it the per-search cost — stays bounded too).
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 2000; i < len(data); i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Insert(data[i], 1); err != nil {
				return
			}
		}
	}()
	q := data[137]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.SearchWindow(q, 5, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
