package coconut

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Storage-backend equivalence contract: every facade must return results
// byte-identical on the file-backed page store (Options.StorageDir) and on
// the simulated disk, across exact, approximate, range, windowed, and
// batch searches, cached and sharded variants included — and, uncached,
// with identical I/O accounting too, since both backends run the same
// accounting core.

// withStorageDir returns opts pointed at a fresh file-backend directory.
func withStorageDir(t *testing.T, opts Options) Options {
	t.Helper()
	opts.StorageDir = filepath.Join(t.TempDir(), "store")
	return opts
}

func TestFileBackendTreeEquivalence(t *testing.T) {
	const n, length, k = 1500, 64, 5
	data := genData(t, n, length, 31)
	queries := genQueries(t, 10, length, 32)
	for _, materialized := range []bool{false, true} {
		for _, cacheBytes := range []int64{0, 1 << 20} {
			t.Run(fmt.Sprintf("mat=%v/cache=%d", materialized, cacheBytes), func(t *testing.T) {
				opts := Options{SeriesLen: length, Materialized: materialized, CacheBytes: cacheBytes}
				sim, err := BuildTree(data, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer sim.Close()
				file, err := BuildTree(data, withStorageDir(t, opts))
				if err != nil {
					t.Fatal(err)
				}
				defer file.Close()
				for qi, q := range queries {
					want, err := sim.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := file.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("query %d: exact results diverged:\nsim:  %+v\nfile: %+v", qi, want, got)
					}
					wantA, err := sim.SearchApprox(q, k)
					if err != nil {
						t.Fatal(err)
					}
					gotA, err := file.SearchApprox(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wantA, gotA) {
						t.Fatalf("query %d: approx results diverged", qi)
					}
					eps := 1.0 + float64(qi)
					wantR, err := sim.SearchRange(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					gotR, err := file.SearchRange(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(wantR, gotR) {
						t.Fatalf("query %d: range results diverged", qi)
					}
				}
				wantB, err := sim.SearchBatch(queries, k)
				if err != nil {
					t.Fatal(err)
				}
				gotB, err := file.SearchBatch(queries, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantB, gotB) {
					t.Fatal("batch results diverged")
				}
				// Identical access sequences must produce identical
				// accounting: both backends embed the same counter core.
				if cacheBytes == 0 {
					if ws, gs := sim.Stats(), file.Stats(); ws != gs {
						t.Fatalf("stats diverged:\nsim:  %+v\nfile: %+v", ws, gs)
					}
				}
			})
		}
	}
}

func TestFileBackendLSMEquivalence(t *testing.T) {
	const n, length, k = 1200, 64, 5
	data := genData(t, n, length, 33)
	queries := genQueries(t, 10, length, 34)
	opts := Options{SeriesLen: length, BufferEntries: 64, GrowthFactor: 3}
	sim, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	file, err := NewLSM(withStorageDir(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	for i, s := range data {
		ts := int64(i % 13)
		if err := sim.Insert(s, ts); err != nil {
			t.Fatal(err)
		}
		if err := file.Insert(s, ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := file.Flush(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := sim.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := file.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: exact results diverged", qi)
		}
		wantW, err := sim.SearchWindow(q, k, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		gotW, err := file.SearchWindow(q, k, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantW, gotW) {
			t.Fatalf("query %d: windowed results diverged", qi)
		}
		wantR, err := sim.SearchRange(q, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := file.SearchRange(q, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("query %d: range results diverged", qi)
		}
	}
	wantB, err := sim.SearchBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := file.SearchBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatal("batch results diverged")
	}
	if ws, gs := sim.Stats(), file.Stats(); ws != gs {
		t.Fatalf("stats diverged:\nsim:  %+v\nfile: %+v", ws, gs)
	}
}

func TestFileBackendStreamEquivalence(t *testing.T) {
	const n, length, k = 900, 64, 5
	data := genData(t, n, length, 35)
	queries := genQueries(t, 8, length, 36)
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		t.Run(string(kind), func(t *testing.T) {
			opts := Options{SeriesLen: length, BufferEntries: 128}
			sim, err := NewStream(kind, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			file, err := NewStream(kind, withStorageDir(t, opts))
			if err != nil {
				t.Fatal(err)
			}
			defer file.Close()
			for i, s := range data {
				ts := int64(i)
				if _, err := sim.Ingest(s, ts); err != nil {
					t.Fatal(err)
				}
				if _, err := file.Ingest(s, ts); err != nil {
					t.Fatal(err)
				}
			}
			if err := sim.Seal(); err != nil {
				t.Fatal(err)
			}
			if err := file.Seal(); err != nil {
				t.Fatal(err)
			}
			if sim.Partitions() != file.Partitions() {
				t.Fatalf("partitions diverged: sim %d, file %d", sim.Partitions(), file.Partitions())
			}
			for qi, q := range queries {
				want, err := sim.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := file.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %d: exact results diverged", qi)
				}
				minTS, maxTS := int64(n/4), int64(3*n/4)
				wantW, err := sim.SearchWindow(q, k, minTS, maxTS)
				if err != nil {
					t.Fatal(err)
				}
				gotW, err := file.SearchWindow(q, k, minTS, maxTS)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantW, gotW) {
					t.Fatalf("query %d: windowed results diverged", qi)
				}
				wantA, err := sim.SearchApprox(q, k, minTS, maxTS)
				if err != nil {
					t.Fatal(err)
				}
				gotA, err := file.SearchApprox(q, k, minTS, maxTS)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wantA, gotA) {
					t.Fatalf("query %d: approx results diverged", qi)
				}
			}
			if ws, gs := sim.Stats(), file.Stats(); ws != gs {
				t.Fatalf("stats diverged:\nsim:  %+v\nfile: %+v", ws, gs)
			}
		})
	}
}

func TestFileBackendShardedEquivalence(t *testing.T) {
	const n, length, k, shards = 1800, 64, 5, 3
	data := genData(t, n, length, 37)
	queries := genQueries(t, 10, length, 38)
	opts := Options{SeriesLen: length}

	t.Run("tree", func(t *testing.T) {
		sim, err := BuildShardedTree(data, shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		fopts := withStorageDir(t, opts)
		file, err := BuildShardedTree(data, shards, fopts)
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		// Each shard must own its own subdirectory of the storage root.
		for i := 0; i < shards; i++ {
			sub := filepath.Join(fopts.StorageDir, fmt.Sprintf("shard-%03d", i))
			if st, err := os.Stat(sub); err != nil || !st.IsDir() {
				t.Fatalf("shard %d storage dir %s missing: %v", i, sub, err)
			}
		}
		for qi, q := range queries {
			want, err := sim.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := file.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %d: exact results diverged", qi)
			}
		}
		wantB, err := sim.SearchBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := file.SearchBatch(queries, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantB, gotB) {
			t.Fatal("batch results diverged")
		}
	})

	t.Run("lsm", func(t *testing.T) {
		lopts := opts
		lopts.BufferEntries = 64
		sim, err := NewShardedLSM(shards, lopts)
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		file, err := NewShardedLSM(shards, withStorageDir(t, lopts))
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		for i, s := range data {
			ts := int64(i % 11)
			if err := sim.Insert(s, ts); err != nil {
				t.Fatal(err)
			}
			if err := file.Insert(s, ts); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := file.Flush(); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, err := sim.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := file.Search(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %d: exact results diverged", qi)
			}
			wantW, err := sim.SearchWindow(q, k, 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			gotW, err := file.SearchWindow(q, k, 2, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantW, gotW) {
				t.Fatalf("query %d: windowed results diverged", qi)
			}
		}
	})
}

// TestFileBackendPersistence proves the snapshot format is shared: a
// file-backed tree saves a snapshot byte-compatible with OpenTree, and the
// reopened (simulated-disk) tree answers identically.
func TestFileBackendPersistence(t *testing.T) {
	const n, length, k = 800, 64, 5
	data := genData(t, n, length, 39)
	queries := genQueries(t, 6, length, 40)
	file, err := BuildTree(data, withStorageDir(t, Options{SeriesLen: length}))
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	snap := filepath.Join(t.TempDir(), "tree.snapshot")
	if err := file.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenTree(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	reopened.SetParallelism(1)
	for qi, q := range queries {
		want, err := file.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: reopened results diverged", qi)
		}
	}
}
