// Benchmarks regenerating every experiment table/figure of the
// reproduction (E1..E9, see DESIGN.md §5 and EXPERIMENTS.md) plus
// micro-benchmarks of the core primitives. Experiment benchmarks run at a
// reduced, laptop-friendly scale; cmd/coconut-bench runs the full tables.
package coconut

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/extsort"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/simd"
	"repro/internal/sortable"
	"repro/internal/storage"
	"repro/internal/workload"
)

func benchScale() workload.Scale {
	return workload.Scale{SeriesLen: 128, Segments: 16, Bits: 8, Seed: 42}
}

// --- Micro-benchmarks: the primitives everything else is built from. ---

func BenchmarkPAA(b *testing.B) {
	s := gen.RandomWalk(rand.New(rand.NewSource(1)), 256).ZNormalize()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sax.PAA(s, 16)
	}
}

func BenchmarkSummarize(b *testing.B) {
	// Full pipeline: z-normalize + PAA + symbols + interleave.
	s := gen.RandomWalk(rand.New(rand.NewSource(1)), 256)
	cfg := index.Config{SeriesLen: 256, Segments: 16, Bits: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = cfg.Summarize(s)
	}
}

func BenchmarkInterleave(b *testing.B) {
	w := sax.FromSeries(gen.RandomWalk(rand.New(rand.NewSource(1)), 256).ZNormalize(), 16, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sortable.Interleave(w)
	}
}

// BenchmarkMinDist contrasts the two lower-bound computations on identical
// inputs: the legacy region-derivation path (Deinterleave + Region + sqrt)
// and the squared-space table probe of the pruning pipeline. The table
// variant is the one every index probe pays per candidate; "prepare"
// measures the once-per-query cost of building the tables.
func BenchmarkMinDist(b *testing.B) {
	cfg := index.Config{SeriesLen: 256, Segments: 16, Bits: 8}
	rng := rand.New(rand.NewSource(2))
	q := index.NewQuery(gen.RandomWalk(rng, 256), cfg)
	keys := make([]sortable.Key, 256)
	for i := range keys {
		keys[i] = sortable.FromSeries(gen.RandomWalk(rng, 256).ZNormalize(), 16, 8)
	}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cfg.MinDistKey(q.PAA, keys[i%len(keys)])
		}
	})
	b.Run("table", func(b *testing.B) {
		ctx := index.AcquireCtx(q, cfg)
		defer ctx.Release()
		sc := ctx.Scratch0()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sc.P.MinDistSqKey(keys[i%len(keys)])
		}
	})
	b.Run("prepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := index.AcquireCtx(q, cfg)
			ctx.Release()
		}
	})
}

// BenchmarkVerify measures candidate verification: the early-abandoning
// squared accumulation straight from encoded payload bytes against the
// decode-then-distance path it replaced, at a tight bound (the common case
// deep in an exact search: most candidates abandon within a few points).
func BenchmarkVerify(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	q := gen.RandomWalk(rng, n).ZNormalize()
	cands := make([][]byte, 64)
	for i := range cands {
		cands[i] = gen.RandomWalk(rng, n).ZNormalize().AppendBinary(nil)
	}
	// A realistic late-search bound: just above the best candidate's
	// distance, so nearly every verification abandons within a few points.
	dists := make([]float64, len(cands))
	for i, c := range cands {
		s, _ := series.DecodeBinary(c, n)
		dists[i] = q.SqDist(s)
	}
	boundSq := dists[0]
	for _, d := range dists {
		if d < boundSq {
			boundSq = d
		}
	}
	boundSq *= 1.1
	b.Run("decode-then-dist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := series.DecodeBinary(cands[i%len(cands)], n)
			if err != nil {
				b.Fatal(err)
			}
			_ = q.SqDistEarlyAbandon(s, boundSq)
		}
	})
	b.Run("encoded-early-abandon", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = q.SqDistEncodedEarlyAbandon(cands[i%len(cands)], boundSq)
		}
	})
}

func BenchmarkExternalSortPerEntry(b *testing.B) {
	// Sort cost amortized per entry at a fixed run shape.
	const n = 20000
	c := record.Codec{}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := storage.NewDisk(0)
		w, _ := storage.NewRecordWriter(d, "in", c.Size())
		rng := rand.New(rand.NewSource(3))
		buf := make([]byte, 0, c.Size())
		for j := 0; j < n; j++ {
			buf = buf[:0]
			buf, _ = c.Append(buf, record.Entry{Key: sortable.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}, ID: int64(j)})
			w.Write(buf)
		}
		w.Close()
		b.StartTimer()
		s := &extsort.Sorter{Disk: d, Codec: c, MemBudget: 64 * 1024}
		if _, err := s.Sort("in", n, "out"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "entries/s")
}

// --- Index-level benchmarks (one per core operation). ---

type builtSet struct {
	once sync.Once
	m    map[string]*workload.Built
	ds   *series.Dataset
}

var benchBuilt builtSet

func builds(b *testing.B) (map[string]*workload.Built, *series.Dataset) {
	b.Helper()
	benchBuilt.once.Do(func() {
		sc := benchScale()
		ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 10000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
		benchBuilt.ds = ds
		benchBuilt.m = map[string]*workload.Built{}
		cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
		for _, v := range workload.Variants {
			built, err := workload.BuildVariant(v, ds, cfg, workload.BuildOptions{})
			if err != nil {
				panic(err)
			}
			benchBuilt.m[v] = built
		}
	})
	return benchBuilt.m, benchBuilt.ds
}

func BenchmarkBuild(b *testing.B) {
	sc := benchScale()
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 5000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	for _, v := range workload.Variants {
		b.Run(v, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				built, err := workload.BuildVariant(v, ds, cfg, workload.BuildOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cost = built.BuildCost(storage.DefaultCostModel)
			}
			b.ReportMetric(cost, "io-cost")
			b.ReportMetric(float64(5000)/b.Elapsed().Seconds()*float64(b.N), "series/s")
		})
	}
}

func BenchmarkQuery(b *testing.B) {
	m, _ := builds(b)
	sc := benchScale()
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	rng := rand.New(rand.NewSource(9))
	queries := make([]series.Series, 32)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	for _, v := range workload.Variants {
		for _, mode := range []string{"approx", "exact"} {
			b.Run(fmt.Sprintf("%s/%s", v, mode), func(b *testing.B) {
				built := m[v]
				before := built.Disk.Stats()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := index.NewQuery(queries[i%len(queries)], cfg)
					var err error
					if mode == "exact" {
						_, err = built.Index.ExactSearch(q, 1)
					} else {
						_, err = built.Index.ApproxSearch(q, 1)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				diff := built.Disk.Stats().Sub(before)
				b.ReportMetric(diff.Cost(storage.DefaultCostModel)/float64(b.N), "io-cost/query")
			})
		}
	}
}

// --- Experiment benchmarks: one per table/figure (reduced scale). ---

func BenchmarkE1Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E1Construction(benchScale(), []int{2000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Query(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E2Query(benchScale(), 2000, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Materialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E3Materialization(benchScale(), 2000, []int{1, 100, 10000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E4Memory(benchScale(), 2000, []float64{0.01, 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Tradeoffs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E5FillFactor(benchScale(), 2000, 100, 5, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
		if _, err := workload.E5GrowthFactor(benchScale(), 2000, 5, []int{2, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E6Streaming(benchScale(), 16, 50, 128, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := workload.E7Heatmap(benchScale(), 2000, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Recommender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = workload.E8Recommender()
	}
}

func BenchmarkE9Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E9Storage(benchScale(), []int{2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming ingest benchmark (Scenario 2's write path). ---

func BenchmarkStreamIngest(b *testing.B) {
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		b.Run(string(kind), func(b *testing.B) {
			s, err := NewStream(kind, Options{SeriesLen: 128, BufferEntries: 512})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			ser := make([][]float64, 256)
			for i := range ser {
				ser[i] = gen.RandomWalk(rng, 128)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Ingest(ser[i%len(ser)], int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel query engine benchmark (speedup trajectory in TRAJECTORY.md). ---

// BenchmarkParallelSearch measures exact k-NN latency on a multi-run LSM
// workload at 1/2/4/8 workers. The serial path and every parallel width
// return identical results (see parallel_equivalence_test.go); this
// benchmark tracks the wall-clock side of that trade. Run on a multi-core
// machine: with GOMAXPROCS=1 the pool degenerates to interleaving and no
// speedup is possible.
func BenchmarkParallelSearch(b *testing.B) {
	const n, length = 20000, 128
	rng := rand.New(rand.NewSource(5))
	data := make([][]float64, n)
	for i := range data {
		data[i] = gen.RandomWalk(rng, length)
	}
	queries := make([][]float64, 32)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, length)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		// Small buffer + high growth factor: a deep, many-run read path —
		// the shape the worker pool is built to fan out over.
		l, err := NewLSM(Options{
			SeriesLen: length, Parallelism: workers,
			BufferEntries: 512, GrowthFactor: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(l.Runs()), "runs")
			for i := 0; i < b.N; i++ {
				if _, err := l.Search(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sharded + batched execution benchmark (PR 3's layer). ---

// BenchmarkBatchSearch measures exact k-NN throughput over a CoconutTree
// at several shard counts, comparing one-query-at-a-time execution against
// SearchBatch (pooled per-worker contexts, queries spread across the
// pool). One benchmark op is a full 32-query sweep; the qps metric is the
// per-query throughput. All configurations return byte-identical results
// (pinned by sharded_equivalence_test.go).
func BenchmarkBatchSearch(b *testing.B) {
	const n, length, k = 20000, 128, 5
	rng := rand.New(rand.NewSource(6))
	data := make([][]float64, n)
	for i := range data {
		data[i] = gen.RandomWalk(rng, length)
	}
	queries := make([][]float64, 32)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, length)
	}
	opts := Options{SeriesLen: length, Materialized: true}
	for _, shards := range []int{1, 2, 4} {
		type searcher interface {
			Search(q []float64, k int) ([]Match, error)
			SearchBatch(qs [][]float64, k int) ([][]Match, error)
		}
		var idx searcher
		if shards == 1 {
			t, err := BuildTree(data, opts)
			if err != nil {
				b.Fatal(err)
			}
			idx = t
		} else {
			sh, err := BuildShardedTree(data, shards, opts)
			if err != nil {
				b.Fatal(err)
			}
			idx = sh
		}
		b.Run(fmt.Sprintf("shards=%d/loop", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := idx.Search(q, k); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
		})
		b.Run(fmt.Sprintf("shards=%d/batch", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := idx.SearchBatch(queries, k); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

func BenchmarkE10Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E10Ablation(benchScale(), 2000, 50, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Cardinality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E11Cardinality(benchScale(), 1000, 5, []int{1, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.E12Recall(benchScale(), 1000, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Buffer-pool benchmark (PR 4's layer): cold vs warm cache. ---

// BenchmarkCachedSearch measures exact k-NN latency on a non-materialized
// CTree whose raw series file lives on the same disk — the workload where
// the buffer pool earns its keep, because every verified candidate pays a
// raw-page fetch. "cold" purges the pool before every query; "warm" runs
// after a warming pass, so index and raw pages are served from pinned
// frames with zero copies. "warm-pin" isolates the page-fetch primitive
// itself: a warm PinPage/Release must be 0 allocs/op (the gate asserts
// allocations never grow), which is what keeps the whole warm search path
// allocation-flat. io-cost/query shows the accounting side: warm cost
// collapses to the misses, i.e. zero at this cache size.
func BenchmarkCachedSearch(b *testing.B) {
	sc := benchScale()
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 10000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	built, err := workload.BuildVariant("CTree", ds, cfg, workload.BuildOptions{CacheBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	queries := make([]index.Query, 32)
	for i := range queries {
		queries[i] = index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), cfg)
	}
	run := func(b *testing.B, purge bool) {
		b.ReportAllocs()
		before := built.IOStats()
		for i := 0; i < b.N; i++ {
			if purge {
				built.Pool.Purge()
			}
			if _, err := built.Index.ExactSearch(queries[i%len(queries)], 5); err != nil {
				b.Fatal(err)
			}
		}
		diff := built.IOStats().Sub(before)
		b.ReportMetric(diff.Cost(storage.DefaultCostModel)/float64(b.N), "io-cost/query")
		b.ReportMetric(100*diff.HitRatio(), "hit%")
	}
	b.Run("cold", func(b *testing.B) { run(b, true) })
	// Warming pass: one sweep of the query set fills the pool.
	for _, q := range queries {
		if _, err := built.Index.ExactSearch(q, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("warm", func(b *testing.B) { run(b, false) })
	b.Run("warm-pin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h, err := built.Pool.PinPage("idx.leaves", int64(i%8))
			if err != nil {
				b.Fatal(err)
			}
			h.Release()
		}
	})
}

// BenchmarkFileBackendSearch measures exact k-NN search on the file-backed
// page store against the simulated-disk baseline over the same build. The
// bench gate watches it: a regression in the file rows means the pread
// path or the page-file layout got slower — the algorithmic cost is pinned
// by the sim rows, which share every line of index code.
func BenchmarkFileBackendSearch(b *testing.B) {
	sc := benchScale()
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 10000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	rng := rand.New(rand.NewSource(16))
	queries := make([]index.Query, 32)
	for i := range queries {
		queries[i] = index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), cfg)
	}
	for _, bk := range []struct {
		name string
		opts workload.BuildOptions
	}{
		{"sim", workload.BuildOptions{}},
		{"file", workload.BuildOptions{StorageDir: b.TempDir()}},
	} {
		built, err := workload.BuildVariant("CTree", ds, cfg, bk.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bk.name, func(b *testing.B) {
			b.ReportAllocs()
			before := built.IOStats()
			for i := 0; i < b.N; i++ {
				if _, err := built.Index.ExactSearch(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
			diff := built.IOStats().Sub(before)
			b.ReportMetric(diff.Cost(storage.DefaultCostModel)/float64(b.N), "io-cost/query")
		})
		if err := built.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Query-planner benchmark (PR 7's layer): planner off/on, cold/warm plan cache. ---

// BenchmarkPlannedSearch measures exact k-NN latency on a non-materialized
// CTree under the statistics-driven planner, on the workload where it earns
// its keep: skewed queries (perturbations of indexed series), so the
// collector's bound tightens immediately and leaf-range envelopes
// disqualify most probes before their pages are read. "off" disables the
// planner (the paper-faithful probe order), "cold" plans every query from
// scratch, and "warm" reuses cached plans after a warming sweep — planning
// must add zero allocations over the off path (the gate asserts
// allocations never grow; the warm planned fill itself is pinned at
// 0 allocs/op by planner_test.go).
// Every configuration returns byte-identical results (pinned by
// planner_equivalence_test.go); io-cost/query shows the savings, which the
// bench gate tracks alongside time and allocations.
func BenchmarkPlannedSearch(b *testing.B) {
	sc := benchScale()
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 10000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	raw, _ := gen.Queries(ds, 32, 0.02, sc.Seed+17)
	queries := make([]index.Query, len(raw))
	for i, q := range raw {
		queries[i] = index.NewQuery(q, cfg)
	}
	run := func(b *testing.B, built *workload.Built) {
		b.ReportAllocs()
		before := built.IOStats()
		skipsBefore := built.Planner.Skips()
		for i := 0; i < b.N; i++ {
			if _, err := built.Index.ExactSearch(queries[i%len(queries)], 5); err != nil {
				b.Fatal(err)
			}
		}
		diff := built.IOStats().Sub(before)
		b.ReportMetric(diff.Cost(storage.DefaultCostModel)/float64(b.N), "io-cost/query")
		b.ReportMetric(float64(built.Planner.Skips()-skipsBefore)/float64(b.N), "skips/query")
	}
	// MemBudget keeps leaves small: many leaf ranges, the unit the planner
	// orders and skips.
	base := workload.BuildOptions{MemBudget: 64 << 10}
	for _, mode := range []struct {
		name string
		opts workload.BuildOptions
		warm bool
	}{
		{"off", workload.BuildOptions{MemBudget: base.MemBudget, DisablePlanner: true}, false},
		{"cold", base, false},
		{"warm", workload.BuildOptions{MemBudget: base.MemBudget, PlanCacheSize: 64}, true},
	} {
		built, err := workload.BuildVariant("CTree", ds, cfg, mode.opts)
		if err != nil {
			b.Fatal(err)
		}
		if mode.warm {
			for _, q := range queries {
				if _, err := built.Index.ExactSearch(q, 5); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(mode.name, func(b *testing.B) { run(b, built) })
	}
}

// --- SIMD + compression benchmarks (PR 9's layer). ---

// BenchmarkDistKernels measures the three hot distance primitives under
// each kernel set this machine offers (always "scalar", plus "avx2" or
// "neon" when usable): the raw early-abandoning squared distance, its
// fused decode-from-page variant, and the blocked MinDist table sum. The
// bench gate watches the sub-benchmarks by name, so a regression in either
// the accelerated or the portable path fails on its own row.
func BenchmarkDistKernels(b *testing.B) {
	defer simd.Select("auto")
	rng := rand.New(rand.NewSource(27))
	const points = 256
	q := make([]float64, points)
	t := make([]float64, points)
	for i := range q {
		q[i], t[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	enc := series.Series(t).AppendBinary(nil)
	tab := make([]float64, 4096)
	for i := range tab {
		tab[i] = rng.Float64()
	}
	idx := make([]int32, 16)
	for i := range idx {
		idx[i] = int32(rng.Intn(len(tab)))
	}
	inf := math.Inf(1)
	for _, impl := range simd.Available() {
		if err := simd.Select(impl); err != nil {
			b.Fatal(err)
		}
		b.Run("SqDist/"+impl, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = simd.SqDist(q, t, inf)
			}
		})
		b.Run("SqDistEncoded/"+impl, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = simd.SqDistEncoded(q, enc, inf)
			}
		})
		b.Run("TableSum/"+impl, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = simd.TableSum(tab, idx)
			}
		})
	}
}

// BenchmarkCompressedSearch measures exact k-NN search over packed pages
// against the fixed-layout baseline on the same build — tree and LSM, the
// two on-disk shapes the codec serves. Answers are byte-identical (pinned
// by compress_equivalence_test.go); what the packed rows must show is the
// io-cost/query drop from fitting more candidates per page, with time and
// allocations no worse than the fixed rows the gate tracks alongside.
func BenchmarkCompressedSearch(b *testing.B) {
	sc := benchScale()
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 10000, Len: sc.SeriesLen, FracEvent: 0.05, Seed: sc.Seed})
	cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: sc.Bits}
	rng := rand.New(rand.NewSource(28))
	queries := make([]index.Query, 32)
	for i := range queries {
		queries[i] = index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), cfg)
	}
	for _, variant := range []string{"CTree", "CLSM"} {
		for _, enc := range []struct {
			name     string
			compress bool
		}{
			{"fixed", false},
			{"packed", true},
		} {
			built, err := workload.BuildVariant(variant, ds, cfg, workload.BuildOptions{Compress: enc.compress})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(variant+"/"+enc.name, func(b *testing.B) {
				b.ReportAllocs()
				before := built.IOStats()
				for i := 0; i < b.N; i++ {
					if _, err := built.Index.ExactSearch(queries[i%len(queries)], 5); err != nil {
						b.Fatal(err)
					}
				}
				diff := built.IOStats().Sub(before)
				b.ReportMetric(diff.Cost(storage.DefaultCostModel)/float64(b.N), "io-cost/query")
			})
		}
	}
}
