package coconut

import (
	"math/rand"
	"sync"
	"testing"
)

// Concurrent Insert + Search + background merge on the public facades:
// searches windowed to the established data (ts=0) must return results
// byte-identical to a quiesced index over exactly that data, no matter how
// the structure churns underneath them. Run under -race in CI.

func concurrentOpts(walDir string) Options {
	return Options{
		SeriesLen: 64, Segments: 8, Bits: 8,
		BufferEntries: 32, GrowthFactor: 3,
		Parallelism:       1,
		CompactionWorkers: 2,
		WALDir:            walDir,
		Durability:        DurabilityBatched,
	}
}

type searcher interface {
	SearchWindow(q []float64, k int, minTS, maxTS int64) ([]Match, error)
	Insert(s []float64, ts int64) error
}

// runConcurrentIdentity loads base data at ts=0 into both indexes, then
// races ts=1 inserts against windowed searches on live, comparing every
// answer with quiesced's.
func runConcurrentIdentity(t *testing.T, live, quiesced searcher, base, churn [][]float64) {
	t.Helper()
	for _, s := range base {
		if err := quiesced.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
		if err := live.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	const queries = 24
	rng := rand.New(rand.NewSource(99))
	qs := make([][]float64, queries)
	want := make([][]Match, queries)
	for i := range qs {
		qs[i] = randSeries(rng, 64)
		var err error
		want[i], err = quiesced.SearchWindow(qs[i], 5, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Writer: a bounded churn stream at ts=1 driving flushes and background
	// merges while searchers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			for _, s := range churn {
				if err := live.Insert(s, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				i := (w*5 + round) % queries
				got, err := live.SearchWindow(qs[i], 5, 0, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want[i]) {
					t.Errorf("query %d: %d vs %d results", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("query %d result %d: %+v, want %+v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentInsertSearchMergeLSM(t *testing.T) {
	base := makeData(600, 64, 91)
	churn := makeData(300, 64, 92)
	quiesced, err := NewLSM(concurrentOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	defer quiesced.Close()
	live, err := NewLSM(concurrentOpts(t.TempDir())) // WAL on: the full write path races
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	runConcurrentIdentity(t, live, quiesced, base, churn)
	if err := live.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if st := live.CompactionStats(); st.Merges == 0 {
		t.Fatal("no background merges happened; the test exercised nothing")
	}
}

func TestConcurrentInsertSearchMergeSharded(t *testing.T) {
	base := makeData(600, 64, 93)
	churn := makeData(300, 64, 94)
	quiesced, err := NewShardedLSM(3, concurrentOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	defer quiesced.Close()
	live, err := NewShardedLSM(3, concurrentOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	runConcurrentIdentity(t, live, quiesced, base, churn)
	if err := live.Quiesce(); err != nil {
		t.Fatal(err)
	}
	merges := int64(0)
	for _, st := range live.CompactionStats() {
		merges += st.Merges
	}
	if merges == 0 {
		t.Fatal("no background merges happened across shards")
	}
}
