package coconut

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// Facade-level crash-recovery harness: acknowledged inserts must survive
// losing every in-memory structure, with only the WAL directory (and
// optionally a SaveFile snapshot) carrying state across the "crash".

func randSeries(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func makeData(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = randSeries(rng, length)
	}
	return out
}

func lsmOpts(walDir string) Options {
	return Options{
		SeriesLen: 64, Segments: 8, Bits: 8,
		BufferEntries: 32, GrowthFactor: 3,
		Parallelism: 1,
		WALDir:      walDir,
		Durability:  DurabilitySync,
	}
}

// referenceLSM builds a WAL-free LSM over the same data for byte-identity
// comparison.
func referenceLSM(t *testing.T, data [][]float64) *LSM {
	t.Helper()
	opts := lsmOpts("")
	ref, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := ref.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

func assertSameAnswers(t *testing.T, tag string, want, got *LSM, seed int64, trials int) {
	t.Helper()
	if want.Count() != got.Count() {
		t.Fatalf("%s: count %d, want %d", tag, got.Count(), want.Count())
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		q := randSeries(rng, 64)
		wm, err := want.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := got.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(wm) != len(gm) {
			t.Fatalf("%s trial %d: %d vs %d results", tag, trial, len(gm), len(wm))
		}
		for i := range wm {
			if wm[i] != gm[i] {
				t.Fatalf("%s trial %d result %d: %+v, want %+v", tag, trial, i, gm[i], wm[i])
			}
		}
	}
}

func TestLSMCrashRecoveryFromWALAlone(t *testing.T) {
	data := makeData(300, 64, 71)
	dir := t.TempDir()
	l, err := NewLSM(lsmOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: abandon the handle without Close. Only the WAL survives (the
	// simulated disk dies with the process).
	l = nil

	rec, err := NewLSM(lsmOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref := referenceLSM(t, data)
	defer ref.Close()
	assertSameAnswers(t, "wal-only recovery", ref, rec, 710, 8)

	// The recovered index keeps ingesting durably.
	extra := makeData(40, 64, 72)
	for i, s := range extra {
		if err := rec.Insert(s, 9); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	if got := rec.Count(); got != 340 {
		t.Fatalf("count after post-recovery inserts = %d, want 340", got)
	}
}

func TestLSMCrashRecoverySnapshotPlusWALTail(t *testing.T) {
	data := makeData(400, 64, 73)
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "lsm.snapshot")
	l, err := NewLSM(lsmOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data[:250] {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint: the snapshot holds the first 250; the log truncates.
	if err := l.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	if st, ok := l.WALStats(); !ok || st.FirstLSN == 0 {
		t.Fatalf("checkpoint did not truncate the WAL: %+v ok=%v", st, ok)
	}
	for i, s := range data[250:] {
		if err := l.Insert(s, int64((250+i)%7)); err != nil {
			t.Fatal(err)
		}
	}
	l = nil // crash after 150 post-checkpoint acknowledged inserts

	// A WAL-only reopen must refuse: part of the data lives in the
	// snapshot.
	if _, err := NewLSM(lsmOpts(dir)); err == nil {
		t.Fatal("NewLSM over a checkpoint-truncated WAL should fail")
	}
	rec, err := OpenLSM(snap, lsmOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref := referenceLSM(t, data)
	defer ref.Close()
	assertSameAnswers(t, "snapshot+tail recovery", ref, rec, 730, 8)
}

func TestOpenLSMWithoutWALUnchanged(t *testing.T) {
	// The legacy single-argument OpenLSM path must behave exactly as
	// before: snapshot only, no WAL machinery.
	data := makeData(150, 64, 74)
	snap := filepath.Join(t.TempDir(), "plain.snapshot")
	l, err := NewLSM(lsmOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i, s := range data {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	got, err := OpenLSM(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	got.SetParallelism(1)
	assertSameAnswers(t, "plain reopen", l, got, 740, 6)
	if _, ok := got.WALStats(); ok {
		t.Fatal("plain reopen should have no WAL")
	}
}

func TestShardedLSMCrashRecoveryPerShardWALs(t *testing.T) {
	data := makeData(500, 64, 75)
	dir := t.TempDir()
	opts := lsmOpts(dir)
	opts.CompactionWorkers = 2
	sh, err := NewShardedLSM(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := sh.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Pre-crash answers are the reference.
	rng := rand.New(rand.NewSource(75))
	queries := make([][]float64, 10)
	want := make([][]Match, len(queries))
	for i := range queries {
		queries[i] = randSeries(rng, 64)
		want[i], err = sh.Search(queries[i], 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	sh = nil // crash: all three shards' in-memory state gone

	rec, err := NewShardedLSM(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Count() != len(data) {
		t.Fatalf("recovered count = %d, want %d", rec.Count(), len(data))
	}
	for i, q := range queries {
		got, err := rec.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("query %d result %d: %+v, want %+v", i, j, got[j], want[i][j])
			}
		}
	}
	// Recovery must reject a different shard count: the hash placement of
	// the recovered totals cannot match.
	if _, err := NewShardedLSM(4, opts); err == nil {
		t.Fatal("recovering 3 shard WALs as 4 shards should fail")
	}
}

func TestOpenLSMDurableKeepsPersistedShape(t *testing.T) {
	// The durable reopen path must restore the snapshot's growth factor
	// and buffer size, not silently fall back to the defaults.
	data := makeData(200, 64, 77)
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "shaped.snapshot")
	opts := lsmOpts(dir)
	opts.GrowthFactor = 9
	opts.BufferEntries = 57
	l, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	l.Close()
	rec, err := OpenLSM(snap, Options{WALDir: dir, Durability: DurabilitySync})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// Shape check by behavior: with the persisted growth factor of 9, the
	// reopened index must not merge runs the snapshot legally held (the
	// defaults, growth 4, would cascade immediately on the next flush).
	runsBefore := rec.lsm.Runs()
	for i, s := range data[:60] {
		if err := rec.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	st := rec.CompactionStats()
	if st.Merges != 0 && runsBefore < 9 {
		t.Fatalf("reopened index merged at %d runs: persisted growth factor not honored (stats %+v)", runsBefore, st)
	}
}

func TestLSMCloseIdempotentAndStats(t *testing.T) {
	dir := t.TempDir()
	opts := lsmOpts(dir)
	opts.CompactionWorkers = 1
	opts.Durability = DurabilityBatched
	l, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := makeData(200, 64, 76)
	for i, s := range data {
		if err := l.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Quiesce(); err != nil {
		t.Fatal(err)
	}
	cst := l.CompactionStats()
	if !cst.Background || cst.Flushes == 0 || cst.Merges == 0 {
		t.Fatalf("compaction stats: %+v", cst)
	}
	wst, ok := l.WALStats()
	if !ok || wst.Appends != 200 || wst.Syncs == 0 {
		t.Fatalf("wal stats: %+v ok=%v", wst, ok)
	}
	if wst.Syncs >= wst.Appends {
		t.Fatalf("batched durability issued %d syncs for %d appends", wst.Syncs, wst.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(cst.DurableLSN) == "" { // keep fmt imported
		t.Fatal("unreachable")
	}
}
