package coconut

import (
	"fmt"

	"repro/internal/clsm"
	"repro/internal/ctree"
	"repro/internal/series"
	"repro/internal/storage"
)

// facadeRawFile is the on-disk mirror of the facade's raw store inside a
// saved tree snapshot, so non-materialized trees reopen self-contained.
const facadeRawFile = "coconut.raw"

// SaveFile persists the tree — leaves, directory metadata, and the raw
// series store — into a single snapshot file on the host filesystem. The
// tree can be reopened with OpenTree.
func (t *Tree) SaveFile(path string) error {
	if err := t.tree.Save(); err != nil {
		return err
	}
	if t.disk.Exists(facadeRawFile) {
		if err := t.disk.Remove(facadeRawFile); err != nil {
			return err
		}
	}
	rf, err := storage.CreateRawFile(t.disk, facadeRawFile, t.cfg.SeriesLen)
	if err != nil {
		return err
	}
	for _, s := range t.raw.ss {
		if _, err := rf.Append(s); err != nil {
			return err
		}
	}
	if err := rf.Seal(); err != nil {
		return err
	}
	return t.disk.SaveFile(path)
}

// SaveFile persists the LSM — its runs, structure metadata, and the raw
// series store — into a single snapshot file on the host filesystem. The
// write buffer is flushed first; reopen with OpenLSM.
func (l *LSM) SaveFile(path string) error {
	if err := l.lsm.Save(); err != nil {
		return err
	}
	if l.disk.Exists(facadeRawFile) {
		if err := l.disk.Remove(facadeRawFile); err != nil {
			return err
		}
	}
	rf, err := storage.CreateRawFile(l.disk, facadeRawFile, l.cfg.SeriesLen)
	if err != nil {
		return err
	}
	for _, s := range l.raw.ss {
		if _, err := rf.Append(s); err != nil {
			return err
		}
	}
	if err := rf.Seal(); err != nil {
		return err
	}
	return l.disk.SaveFile(path)
}

// OpenLSM reopens an LSM saved with SaveFile. Parallelism is not part of
// the snapshot: reopened indexes use the default (GOMAXPROCS) worker pool;
// call SetParallelism to change it.
func OpenLSM(path string) (*LSM, error) {
	disk, err := storage.LoadDiskFile(path)
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	lsm, err := clsm.Open(disk, "clsm", raw)
	if err != nil {
		return nil, err
	}
	out := &LSM{lsm: lsm, disk: disk, raw: raw}
	out.cfg = lsm.Config()
	if err := loadFacadeRaw(disk, raw, out.cfg.SeriesLen, int64(out.Count())); err != nil {
		return nil, err
	}
	return out, nil
}

// loadFacadeRaw reads the snapshot's raw series mirror back into memory.
func loadFacadeRaw(disk *storage.Disk, raw *memStore, seriesLen int, count int64) error {
	if !disk.Exists(facadeRawFile) {
		return fmt.Errorf("coconut: snapshot missing raw store %q", facadeRawFile)
	}
	rf, err := storage.OpenRecordFile(disk, facadeRawFile, series.Size(seriesLen))
	if err != nil {
		return err
	}
	for i := int64(0); i < count; i++ {
		rec, err := rf.Get(i)
		if err != nil {
			return fmt.Errorf("coconut: reading raw series %d: %w", i, err)
		}
		s, err := series.DecodeBinary(rec, seriesLen)
		if err != nil {
			return err
		}
		raw.ss = append(raw.ss, s)
	}
	return nil
}

// OpenTree reopens a tree saved with SaveFile. Searches, inserts, and
// statistics work exactly as on the original. Parallelism is not part of
// the snapshot: reopened trees use the default (GOMAXPROCS) worker pool;
// call SetParallelism to change it.
func OpenTree(path string) (*Tree, error) {
	disk, err := storage.LoadDiskFile(path)
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	tr, err := ctree.Open(disk, "ctree", raw)
	if err != nil {
		return nil, err
	}
	out := &Tree{tree: tr, disk: disk, raw: raw}
	out.cfg = tr.Config() // restored from the persisted metadata
	if err := loadFacadeRaw(disk, raw, out.cfg.SeriesLen, tr.Count()); err != nil {
		return nil, err
	}
	return out, nil
}
