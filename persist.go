package coconut

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/clsm"
	"repro/internal/compact"
	"repro/internal/ctree"
	"repro/internal/fsx"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/simd"
	"repro/internal/storage"
	"repro/internal/wal"
)

// facadeRawFile is the on-disk mirror of the facade's raw store inside a
// saved tree snapshot, so non-materialized trees reopen self-contained.
const facadeRawFile = "coconut.raw"

// SaveFile persists the tree — leaves, directory metadata, and the raw
// series store — into a single snapshot file on the host filesystem. The
// tree can be reopened with OpenTree.
func (t *Tree) SaveFile(path string) error {
	if err := t.tree.Save(); err != nil {
		return err
	}
	if t.disk.Exists(facadeRawFile) {
		if err := t.disk.Remove(facadeRawFile); err != nil {
			return err
		}
	}
	rf, err := storage.CreateRawFile(t.disk, facadeRawFile, t.cfg.SeriesLen)
	if err != nil {
		return err
	}
	for _, s := range t.raw.snapshot() {
		if _, err := rf.Append(s); err != nil {
			return err
		}
	}
	if err := rf.Seal(); err != nil {
		return err
	}
	return t.disk.SaveFileFS(fsx.OrOS(t.hostFS), path)
}

// SaveFile persists the LSM — its runs, structure metadata, and the raw
// series store — into a single snapshot file on the host filesystem. The
// write buffer is flushed first; reopen with OpenLSM. With a WAL
// configured, a successful save is a checkpoint: everything the snapshot
// holds leaves the log, so the log stays bounded by the insert traffic
// since the last save.
func (l *LSM) SaveFile(path string) error {
	if err := l.lsm.Save(); err != nil {
		return err
	}
	if l.disk.Exists(facadeRawFile) {
		if err := l.disk.Remove(facadeRawFile); err != nil {
			return err
		}
	}
	rf, err := storage.CreateRawFile(l.disk, facadeRawFile, l.cfg.SeriesLen)
	if err != nil {
		return err
	}
	for _, s := range l.raw.snapshot() {
		if _, err := rf.Append(s); err != nil {
			return err
		}
	}
	if err := rf.Seal(); err != nil {
		return err
	}
	// The snapshot write is atomic-and-durable (temp file, fsync, rename,
	// parent-dir fsync) before the log is touched; only then may the
	// checkpoint truncate. Reversing the order — or truncating after a
	// non-durable write — loses acknowledged inserts if the machine dies
	// between the truncation reaching disk and the snapshot doing so.
	if err := l.disk.SaveFileFS(fsx.OrOS(l.hostFS), path); err != nil {
		return err
	}
	if l.wal != nil {
		// Checkpoint: every logged entry is in the snapshot (Save flushed
		// the buffer); the whole retained log is obsolete.
		if err := l.wal.Sync(); err != nil {
			return err
		}
		if err := l.wal.Checkpoint(l.wal.NextLSN() - 1); err != nil {
			return err
		}
	}
	return nil
}

// OpenLSM reopens an LSM saved with SaveFile. Parallelism is not part of
// the snapshot: reopened indexes use the default (GOMAXPROCS) worker pool;
// call SetParallelism to change it.
//
// An optional Options value re-attaches the durable-ingest machinery:
// WALDir replays the log tail past the snapshot (recovering acknowledged
// inserts the snapshot missed — the crash story), and Durability /
// CompactionWorkers apply as in NewLSM. CompressRuns and Kernels also
// apply: run encoding is a property of each run, so existing runs keep the
// encoding they were written with while new flushes and merges follow the
// reopened setting. Other Options fields are ignored; the snapshot defines
// the index shape.
func OpenLSM(path string, opts ...Options) (*LSM, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Kernels != "" {
		if err := simd.Select(o.Kernels); err != nil {
			return nil, fmt.Errorf("coconut: %w", err)
		}
	}
	disk, err := storage.LoadDiskFileFS(fsx.OrOS(o.FS), path)
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	// Planning state is not persisted (like parallelism); the optional
	// Options value carries the planner knobs for the reopened index.
	out := &LSM{disk: disk, planner: o.newPlanner(), raw: raw, hostFS: o.FS}

	// The raw mirror covers exactly the snapshot-resident entries; WAL
	// replay appends past it.
	saved, _, err := clsm.SavedState(disk, "clsm")
	if err != nil {
		return nil, err
	}
	snapCount := saved.Count
	if o.CompactionWorkers > 0 {
		out.sched = compact.NewScheduler(o.CompactionWorkers)
		out.ownsSched = true
	}
	if o.WALDir == "" {
		lsm, err := clsm.Open(disk, "clsm", raw)
		if err != nil {
			out.closeOwned()
			return nil, err
		}
		if out.sched != nil {
			// Opened without a WAL there is nothing background to attach the
			// scheduler to; drop it rather than leak workers.
			out.sched.Close()
			out.sched, out.ownsSched = nil, false
		}
		lsm.SetPlanner(out.planner)
		if err := lsm.SetCompress(o.CompressRuns); err != nil {
			out.closeOwned()
			return nil, err
		}
		out.lsm = lsm
		out.cfg = lsm.Config()
		if err := loadFacadeRaw(disk, raw, out.cfg.SeriesLen, snapCount); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Durable reopen: probe the snapshot's shape, load the mirror, then
	// recover through manifest + WAL tail.
	probe, err := clsm.Open(disk, "clsm", raw)
	if err != nil {
		out.closeOwned()
		return nil, err
	}
	out.cfg = probe.Config()
	if err := loadFacadeRaw(disk, raw, out.cfg.SeriesLen, snapCount); err != nil {
		out.closeOwned()
		return nil, err
	}
	wopts, err := walOptions(o.WALDir, o.Durability, o.FS)
	if err != nil {
		out.closeOwned()
		return nil, err
	}
	w, err := wal.Open(wopts)
	if err != nil {
		out.closeOwned()
		return nil, err
	}
	out.wal = w
	// The snapshot defines the index shape: reopen with its persisted
	// growth factor and buffer size unless the caller explicitly overrides.
	growth, bufEntries := o.GrowthFactor, o.BufferEntries
	if growth == 0 {
		growth = saved.GrowthFactor
	}
	if bufEntries == 0 {
		bufEntries = saved.BufferEntries
	}
	lsm, err := clsm.Recover(clsm.Options{
		Disk:          disk,
		Name:          "clsm",
		Config:        out.cfg,
		GrowthFactor:  growth,
		BufferEntries: bufEntries,
		Raw:           raw,
		WAL:           w,
		Scheduler:     out.sched,
		Planner:       out.planner,
		Compress:      o.CompressRuns,
	}, func(e clsm.ReplayedEntry, z series.Series) error {
		raw.setAt(e.ID, z)
		return nil
	})
	if err != nil {
		out.closeAll()
		return nil, err
	}
	out.lsm = lsm
	return out, nil
}

// loadFacadeRaw reads the snapshot's raw series mirror back into memory.
func loadFacadeRaw(disk storage.Backend, raw *memStore, seriesLen int, count int64) error {
	if !disk.Exists(facadeRawFile) {
		return fmt.Errorf("coconut: snapshot missing raw store %q", facadeRawFile)
	}
	rf, err := storage.OpenRecordFile(disk, facadeRawFile, series.Size(seriesLen))
	if err != nil {
		return err
	}
	for i := int64(0); i < count; i++ {
		rec, err := rf.Get(i)
		if err != nil {
			return fmt.Errorf("coconut: reading raw series %d: %w", i, err)
		}
		s, err := series.DecodeBinary(rec, seriesLen)
		if err != nil {
			return err
		}
		raw.append(s)
	}
	return nil
}

// shardedManifest is the JSON header of a sharded snapshot: everything
// needed to reopen the shard files and rebuild the global ID space (the
// hash placement is a pure function of count and shard count, so the
// local-to-global mappings are not stored).
type shardedManifest struct {
	Format string `json:"format"` // "coconut-sharded"
	Kind   string `json:"kind"`   // "tree" or "lsm"
	Shards int    `json:"shards"`
	Count  int64  `json:"count"`
}

const shardedFormat = "coconut-sharded"

// shardFilePath names shard i's snapshot file within a sharded file set.
func shardFilePath(path string, i int) string { return fmt.Sprintf("%s.shard%03d", path, i) }

// SaveFile persists the sharded index as one file set: a JSON manifest at
// path plus one self-contained shard snapshot per shard at path.shardNNN
// (each saved exactly as an unsharded Tree/LSM snapshot, raw mirror
// included). Reopen with OpenSharded. LSM shards are flushed first.
func (s *Sharded) SaveFile(path string) error {
	for i := 0; i < s.NumShards(); i++ {
		var err error
		switch s.kind {
		case shardKindTree:
			err = s.trees[i].SaveFile(shardFilePath(path, i))
		default:
			err = s.lsms[i].SaveFile(shardFilePath(path, i))
		}
		if err != nil {
			return fmt.Errorf("coconut: saving shard %d: %w", i, err)
		}
	}
	m := shardedManifest{Format: shardedFormat, Kind: s.kind, Shards: s.NumShards(), Count: int64(s.Count())}
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	// The manifest commits the shard file set: write it atomically and
	// durably (temp, fsync, rename, dir fsync) so a crash leaves either
	// the previous complete snapshot or the new one, never a torn header
	// over freshly truncated shard logs.
	return fsx.WriteFileAtomic(fsx.OrOS(s.hostFS), path, func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	})
}

// OpenSharded reopens a sharded index saved with SaveFile: the manifest
// names the shard files, each shard reopens as an unsharded snapshot, and
// the global ID space is rebuilt from the deterministic hash placement.
// Parallelism is not part of the snapshot: reopened sharded indexes probe
// shards on the default (GOMAXPROCS) pool with serial per-shard scans; call
// SetParallelism to change the cross-shard pool.
func OpenSharded(path string) (*Sharded, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m shardedManifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("coconut: %s is not a sharded snapshot manifest: %w", path, err)
	}
	if m.Format != shardedFormat {
		return nil, fmt.Errorf("coconut: %s has format %q, want %q", path, m.Format, shardedFormat)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("coconut: manifest %s names %d shards", path, m.Shards)
	}
	part := shard.Partition(m.Count, m.Shards)
	switch m.Kind {
	case shardKindTree:
		trees := make([]*Tree, m.Shards)
		for i := range trees {
			t, oerr := OpenTree(shardFilePath(path, i))
			if oerr != nil {
				return nil, fmt.Errorf("coconut: opening shard %d: %w", i, oerr)
			}
			t.SetParallelism(1)
			trees[i] = t
		}
		return assembleShardedTrees(trees, part, trees[0].cfg, 0, nil, (Options{}).newPlanner())
	case shardKindLSM:
		lsms := make([]*LSM, m.Shards)
		for i := range lsms {
			l, oerr := OpenLSM(shardFilePath(path, i))
			if oerr != nil {
				return nil, fmt.Errorf("coconut: opening shard %d: %w", i, oerr)
			}
			l.SetParallelism(1)
			lsms[i] = l
		}
		return assembleShardedLSMs(lsms, part, lsms[0].cfg, 0, nil, (Options{}).newPlanner())
	default:
		return nil, fmt.Errorf("coconut: manifest %s has unknown kind %q", path, m.Kind)
	}
}

// OpenTree reopens a tree saved with SaveFile. Searches, inserts, and
// statistics work exactly as on the original. Parallelism is not part of
// the snapshot: reopened trees use the default (GOMAXPROCS) worker pool;
// call SetParallelism to change it.
func OpenTree(path string) (*Tree, error) {
	disk, err := storage.LoadDiskFile(path)
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	tr, err := ctree.Open(disk, "ctree", raw)
	if err != nil {
		return nil, err
	}
	out := &Tree{tree: tr, disk: disk, planner: (Options{}).newPlanner(), raw: raw}
	tr.SetPlanner(out.planner)
	out.cfg = tr.Config() // restored from the persisted metadata
	if err := loadFacadeRaw(disk, raw, out.cfg.SeriesLen, tr.Count()); err != nil {
		return nil, err
	}
	return out, nil
}
