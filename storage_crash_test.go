package coconut

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fsx"
)

// Checkpoint-ordering crash tests: SaveFile must make the snapshot durable
// (temp file, fsync, rename, directory fsync) BEFORE truncating the WAL,
// and a failed save must leave the log untouched. Options.FS injects the
// crash-simulating MemFS so "power loss" and partial writes are exact.

func memLSMOpts(fs fsx.FS, walDir string) Options {
	o := lsmOpts(walDir)
	o.FS = fs
	return o
}

// TestCheckpointSurvivesCrash is the ordering fix's happy path: insert,
// SaveFile (snapshot durable + WAL truncated), insert more, crash. The
// snapshot plus the log tail must reproduce every acknowledged insert.
func TestCheckpointSurvivesCrash(t *testing.T) {
	data := makeData(200, 64, 81)
	mfs := fsx.NewMemFS()
	opts := memLSMOpts(mfs, "wal")
	l, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data[:120] {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SaveFile("snap"); err != nil {
		t.Fatal(err)
	}
	if st, ok := l.WALStats(); !ok || st.FirstLSN == 0 {
		t.Fatalf("checkpoint did not truncate the WAL: %+v ok=%v", st, ok)
	}
	for i, s := range data[120:] {
		if err := l.Insert(s, int64((120+i)%7)); err != nil {
			t.Fatal(err)
		}
	}
	mfs.Crash() // power cut: only fsynced state survives
	l = nil

	rec, err := OpenLSM("snap", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref := referenceLSM(t, data)
	defer ref.Close()
	assertSameAnswers(t, "post-crash checkpoint recovery", ref, rec, 810, 8)
}

// TestFailedSnapshotSaveLeavesWALIntact is the ordering bug's regression
// test: when the snapshot write dies mid-way (here: the atomic rename
// fails), SaveFile must return the error WITHOUT truncating the WAL — on
// the old code path (os.Create, truncate anyway) a crash after this point
// lost every acknowledged insert.
func TestFailedSnapshotSaveLeavesWALIntact(t *testing.T) {
	data := makeData(150, 64, 82)
	mfs := fsx.NewMemFS()
	opts := memLSMOpts(mfs, "wal")
	l, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := l.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	before, ok := l.WALStats()
	if !ok {
		t.Fatal("expected a WAL")
	}
	mfs.SetFaultHook(func(op, path string) error {
		if op == "rename" && strings.HasPrefix(path, "snap") {
			return fsx.ErrInjected
		}
		return nil
	})
	if err := l.SaveFile("snap"); err == nil {
		t.Fatal("SaveFile should fail when the snapshot rename fails")
	}
	mfs.SetFaultHook(nil)
	after, _ := l.WALStats()
	if after.FirstLSN != before.FirstLSN {
		t.Fatalf("failed save truncated the WAL: FirstLSN %d -> %d", before.FirstLSN, after.FirstLSN)
	}

	// Crash now: no snapshot landed, so the WAL alone must recover every
	// acknowledged insert.
	mfs.Crash()
	l = nil
	rec, err := NewLSM(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref := referenceLSM(t, data)
	defer ref.Close()
	assertSameAnswers(t, "wal-only recovery after failed save", ref, rec, 820, 8)
}

// TestSnapshotSaveAtomicUnderCrash drives SaveFile into a crash at every
// mutating filesystem operation: afterwards the snapshot path must hold
// either nothing or a complete snapshot — never a torn file — and the WAL
// must still cover whatever the snapshot misses.
func TestSnapshotSaveAtomicUnderCrash(t *testing.T) {
	data := makeData(80, 64, 83)
	for failAt := int64(0); ; failAt++ {
		mfs := fsx.NewMemFS()
		opts := memLSMOpts(mfs, "wal")
		l, err := NewLSM(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i%7)); err != nil {
				t.Fatal(err)
			}
		}
		start := mfs.Ops()
		mfs.FailAfter(start+failAt, nil)
		saveErr := l.SaveFile("snap")
		mfs.SetFaultHook(nil)
		mfs.Crash()
		l = nil

		var rec *LSM
		if _, statErr := mfs.Stat("snap"); statErr == nil {
			// A snapshot landed: it must be complete and openable.
			rec, err = OpenLSM("snap", opts)
			if err != nil {
				t.Fatalf("failAt=%d: snapshot present but unopenable: %v", failAt, err)
			}
		} else {
			if saveErr == nil {
				t.Fatalf("failAt=%d: SaveFile succeeded but no durable snapshot exists", failAt)
			}
			rec, err = NewLSM(opts)
			if err != nil {
				t.Fatalf("failAt=%d: WAL-only recovery failed: %v", failAt, err)
			}
		}
		ref := referenceLSM(t, data)
		assertSameAnswers(t, "atomic-save recovery", ref, rec, 830, 4)
		rec.Close()
		ref.Close()
		if saveErr == nil {
			return // the whole save ran fault-free; the matrix is covered
		}
	}
}

// TestShardedManifestAtomicSave pins the sharded-manifest half of the fix:
// the manifest commits via write-temp -> fsync -> rename -> dir fsync, so
// a crash during a re-save leaves the previous complete manifest, not a
// torn JSON header (the old code used a bare os.WriteFile).
func TestShardedManifestAtomicSave(t *testing.T) {
	data := makeData(240, 64, 84)
	mfs := fsx.NewMemFS()
	opts := memLSMOpts(mfs, "wal")
	sh, err := NewShardedLSM(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data[:160] {
		if err := sh.Insert(s, int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.SaveFile("snap"); err != nil {
		t.Fatal(err)
	}
	v1, err := mfs.ReadFile("snap")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Format string `json:"format"`
		Count  int64  `json:"count"`
	}
	if err := json.Unmarshal(v1, &m); err != nil || m.Format != "coconut-sharded" {
		t.Fatalf("first manifest not a complete header: %v (%q)", err, v1)
	}

	for i, s := range data[160:] {
		if err := sh.Insert(s, int64((160+i)%7)); err != nil {
			t.Fatal(err)
		}
	}
	// The re-save dies at the manifest rename; shard snapshots (different
	// paths) go through.
	mfs.SetFaultHook(func(op, path string) error {
		if op == "rename" && path == "snap.tmp" {
			return fsx.ErrInjected
		}
		return nil
	})
	if err := sh.SaveFile("snap"); err == nil {
		t.Fatal("SaveFile should surface the manifest rename failure")
	}
	mfs.SetFaultHook(nil)
	mfs.Crash()

	got, err := mfs.ReadFile("snap")
	if err != nil {
		t.Fatalf("manifest lost after crashed re-save: %v", err)
	}
	if !bytes.Equal(got, v1) {
		t.Fatalf("manifest torn after crashed re-save:\nwant %q\ngot  %q", v1, got)
	}
	sh.Close()
}
