package coconut

import (
	"fmt"
	"testing"
)

// These tests pin the packed page encoding's core contract at the facade
// level: storing tree leaves and LSM runs delta/bit-packed may change page
// counts and I/O cost — both must drop — but never answers. Every query
// below runs against an uncompressed reference and a CompressRuns index and
// must match byte for byte on exact, range, windowed, and batch searches,
// for Tree, LSM, and Sharded at shard counts 1, 2, and 4. A final test
// pins the per-run encoding property: a snapshot written compressed reopens
// readable under either setting, mixing packed and fixed runs in one LSM.

func compressedOpts(base Options) (plain, comp Options) {
	plain, comp = base, base
	comp.CompressRuns = true
	return plain, comp
}

// checkCompressedEquiv runs the query matrix against the uncompressed
// reference, twice per query so any lazily-built state answers both cold
// and warm. Both indexes run the identical traffic — the per-index Stats
// stay comparable for the io-cost assertions afterwards.
func checkCompressedEquiv(t *testing.T, label string, queries [][]float64, plain, comp equivSearcher) {
	t.Helper()
	for _, q := range queries {
		wantK, err := plain.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		eps := 1.0
		if len(wantK) > 2 {
			eps = wantK[2].Dist // guarantees a non-trivial range answer
		}
		wantR, err := plain.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, pass := range []string{"cold", "warm"} {
			if pass == "warm" {
				// Mirror the extra pass on the reference so I/O totals match.
				if _, err := plain.Search(q, 5); err != nil {
					t.Fatal(err)
				}
				if _, err := plain.SearchRange(q, eps); err != nil {
					t.Fatal(err)
				}
			}
			gotK, err := comp.Search(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/exact/"+pass, wantK, gotK)
			gotR, err := comp.SearchRange(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/range/"+pass, wantR, gotR)
		}
	}
}

// checkCompressedCheaper asserts the I/O contract after identical build and
// query traffic: key/id/ts-only layouts must strictly shrink (page count and
// io-cost both drop); materialized layouts carry verbatim payloads that
// dominate each entry, so they must merely never get worse.
func checkCompressedCheaper(t *testing.T, label string, materialized bool, refSt, compSt Stats) {
	t.Helper()
	refCost, compCost := refSt.Cost(10), compSt.Cost(10)
	if materialized {
		if compSt.Pages > refSt.Pages {
			t.Fatalf("%s: compressed index has %d pages, uncompressed %d", label, compSt.Pages, refSt.Pages)
		}
		// The page header is pure overhead on payload-dominated entries and
		// merge cascades rewrite it per page; tolerate a few percent.
		if compCost > refCost*1.05 {
			t.Fatalf("%s: compressed io-cost %.0f above uncompressed %.0f", label, compCost, refCost)
		}
		return
	}
	if compSt.Pages >= refSt.Pages {
		t.Fatalf("%s: compressed index has %d pages, uncompressed %d", label, compSt.Pages, refSt.Pages)
	}
	if compCost >= refCost {
		t.Fatalf("%s: compressed io-cost %.0f not below uncompressed %.0f", label, compCost, refCost)
	}
}

func TestCompressedTreeEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 31)
	for _, mat := range []bool{false, true} {
		plainOpts, compOpts := compressedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: mat})
		ref, err := BuildTree(data, plainOpts)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := BuildTree(data, compOpts)
		if err != nil {
			t.Fatal(err)
		}
		label := map[bool]string{false: "tree", true: "treefull"}[mat]
		checkCompressedEquiv(t, label, queries, ref, comp)
		wantB, err := ref.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := comp.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantB {
			sameMatches(t, fmt.Sprintf("%s/batch/%d", label, i), wantB[i], gotB[i])
		}
		// The encoding's point: fewer pages hold the same entries, and the
		// same query traffic costs less I/O. Verbatim payloads dominate
		// materialized entries, so the strict win is pinned on the
		// key/id/ts-only layout; materialized must simply never get worse.
		checkCompressedCheaper(t, label, mat, ref.Stats(), comp.Stats())
	}
}

func TestCompressedLSMEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 32)
	build := func(opts Options) *LSM {
		opts.BufferEntries = 256
		opts.GrowthFactor = 3
		l, err := NewLSM(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range data {
			if err := l.Insert(s, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return l
	}
	for _, mat := range []bool{false, true} {
		plainOpts, compOpts := compressedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: mat})
		ref := build(plainOpts)
		comp := build(compOpts)
		label := map[bool]string{false: "lsm", true: "lsmfull"}[mat]
		checkCompressedEquiv(t, label, queries, ref, comp)
		for _, q := range queries[:4] {
			want, err := ref.SearchWindow(q, 5, 500, 2200)
			if err != nil {
				t.Fatal(err)
			}
			got, err := comp.SearchWindow(q, 5, 500, 2200)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/window", want, got)
		}
		wantB, err := ref.SearchBatch(queries, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := comp.SearchBatch(queries, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantB {
			sameMatches(t, fmt.Sprintf("%s/batch/%d", label, i), wantB[i], gotB[i])
		}
		checkCompressedCheaper(t, label, mat, ref.Stats(), comp.Stats())
	}
}

func TestCompressedShardedEquivalence(t *testing.T) {
	data, queries := cacheEquivData(3000, 64, 33)
	plainOpts, compOpts := compressedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6, Materialized: true})
	// The strongest reference: an uncompressed unsharded tree, which the
	// sharded compressed answers must match byte for byte at every count.
	ref, err := BuildTree(data, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		comp, err := BuildShardedTree(data, shards, compOpts)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("sharded%d", shards)
		checkCompressedEquiv(t, label, queries, ref, comp)
		wantB, err := ref.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := comp.SearchBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantB {
			sameMatches(t, fmt.Sprintf("%s/batch/%d", label, i), wantB[i], gotB[i])
		}
	}
}

func TestCompressedShardedLSMEquivalence(t *testing.T) {
	data, queries := cacheEquivData(2000, 64, 34)
	build := func(opts Options, shards int) *Sharded {
		opts.BufferEntries = 200
		opts.GrowthFactor = 3
		s, err := NewShardedLSM(shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, ser := range data {
			if err := s.Insert(ser, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	plainOpts, compOpts := compressedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6})
	for _, shards := range []int{2, 4} {
		ref := build(plainOpts, shards)
		comp := build(compOpts, shards)
		label := fmt.Sprintf("shardedlsm%d", shards)
		checkCompressedEquiv(t, label, queries[:6], ref, comp)
		for _, q := range queries[:4] {
			want, err := ref.SearchWindow(q, 5, 100, 1800)
			if err != nil {
				t.Fatal(err)
			}
			got, err := comp.SearchWindow(q, 5, 100, 1800)
			if err != nil {
				t.Fatal(err)
			}
			sameMatches(t, label+"/window", want, got)
		}
	}
}

// TestCompressedLSMReopenMixedRuns pins run encoding as a per-run property:
// a snapshot whose runs were written packed reopens readable with
// CompressRuns off (new flushes then write fixed-layout runs, so the LSM
// holds both encodings at once), and the mixed index still answers exactly
// like an uncompressed reference over the same data.
func TestCompressedLSMReopenMixedRuns(t *testing.T) {
	data, queries := cacheEquivData(1500, 64, 35)
	_, compOpts := compressedOpts(Options{SeriesLen: 64, Segments: 8, Bits: 6})
	compOpts.BufferEntries = 128
	compOpts.GrowthFactor = 3

	comp, err := NewLSM(compOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data[:1000] {
		if err := comp.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := comp.Flush(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/compressed.ccnut"
	if err := comp.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// Reopen with compression off: the packed runs must stay readable.
	reopened, err := OpenLSM(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data[1000:] {
		if err := reopened.Insert(s, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := reopened.Flush(); err != nil {
		t.Fatal(err)
	}

	// Uncompressed reference over the full data set.
	refOpts := Options{SeriesLen: 64, Segments: 8, Bits: 6, BufferEntries: 128, GrowthFactor: 3}
	ref, err := NewLSM(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := ref.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	checkCompressedEquiv(t, "mixed", queries, ref, reopened)

	// And back the other way: reopen the mixed index compressed again.
	path2 := t.TempDir() + "/mixed.ccnut"
	if err := reopened.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	again, err := OpenLSM(path2, Options{CompressRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	checkCompressedEquiv(t, "mixed/recompressed", queries[:6], ref, again)
}
